//! Dense `f32` tensors and small dense linear algebra for the CalTrain
//! reproduction.
//!
//! This crate is the numeric substrate everything else builds on: the
//! deep-learning framework (`caltrain-nn`), the information-exposure
//! assessment, the fingerprint store and the locally-linear-embedding
//! visualisation all operate on [`Tensor`] values.
//!
//! Two GEMM kernels are provided on purpose:
//!
//! * [`gemm::gemm_strict`] — straight scalar loops with a fixed evaluation
//!   order. This models code compiled *for an SGX enclave*, where the paper's
//!   prototype could not use `-ffast-math`, SIMD or GPU acceleration.
//! * [`gemm::gemm_blocked`] — cache-blocked, unrolled kernel modelling the
//!   accelerated out-of-enclave path.
//!
//! Both kernels compute the same result; the strict kernel is simply slower,
//! which is exactly the asymmetry CalTrain's partitioned training exploits
//! (paper §IV-B, Fig. 6).
//!
//! # Example
//!
//! ```
//! use caltrain_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), caltrain_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod gemm;
pub mod im2col;
pub mod linalg;
pub mod stats;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
