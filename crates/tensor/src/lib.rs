//! Dense `f32` tensors and small dense linear algebra for the CalTrain
//! reproduction.
//!
//! This crate is the numeric substrate everything else builds on: the
//! deep-learning framework (`caltrain-nn`), the information-exposure
//! assessment, the fingerprint store and the locally-linear-embedding
//! visualisation all operate on [`Tensor`] values.
//!
//! Two GEMM kernel families are provided on purpose:
//!
//! * [`gemm::gemm_strict`] / [`gemm::gemm_at_b_strict`] — straight scalar
//!   loops with a fixed evaluation order. These model code compiled *for
//!   an SGX enclave*, where the paper's prototype could not use
//!   `-ffast-math`, SIMD or GPU acceleration.
//! * [`gemm::gemm_native`] / [`gemm::gemm_at_b_native`] — cache-blocked
//!   kernels modelling the accelerated out-of-enclave path, dispatching
//!   to packed-tile variants ([`gemm::gemm_packed`],
//!   [`gemm::gemm_at_b_packed`]) once an operand outgrows cache reach.
//!
//! Every kernel performs the identical per-output addition sequence, so
//! the families produce bit-identical results; the strict one is simply
//! slower, which is exactly the asymmetry CalTrain's partitioned training
//! exploits (paper §IV-B, Fig. 6). On hosts with AVX2 (or on aarch64,
//! where NEON is baseline) the native dispatch rides an explicit
//! `core::arch` SIMD backend ([`simd`]) that keeps the same bitwise
//! contract — lanes own independent output columns, separate mul+add,
//! no FMA — and `CALTRAIN_SIMD=0` forces the scalar fallback.
//! [`Scratch`] supplies the grow-only buffer arenas the zero-allocation
//! training hot path is built on.
//!
//! # Example
//!
//! ```
//! use caltrain_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), caltrain_tensor::TensorError>(())
//! ```

// `deny` rather than `forbid`: the `simd` module is the one sanctioned
// `core::arch` island and opts out locally (the runtime crate set the
// precedent in PR 4). Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod scratch;
mod shape;
mod tensor;

pub mod distance;
pub mod epilogue;
pub mod gemm;
pub mod im2col;
pub mod linalg;
pub mod simd;
pub mod stats;
pub mod tree;

pub use epilogue::Activation;
pub use error::TensorError;
pub use scratch::Scratch;
pub use shape::Shape;
pub use tensor::Tensor;
