//! Small dense linear-algebra routines: Gaussian-elimination solves and a
//! Jacobi eigensolver for symmetric matrices.
//!
//! These exist to support the accountability tooling: locally linear
//! embedding (paper Fig. 7) solves one small Gram system per data point for
//! the reconstruction weights, then takes the *bottom* eigenvectors of
//! `(I − W)ᵀ(I − W)` for the 2-D visualisation coordinates.

use crate::{Tensor, TensorError};

/// Solves the dense linear system `a · x = b` in place via Gaussian
/// elimination with partial pivoting.
///
/// `a` is an `n×n` row-major matrix and `b` a length-`n` vector; both are
/// consumed as scratch. Returns the solution vector.
///
/// # Errors
///
/// Returns [`TensorError::Numerical`] if the matrix is singular to working
/// precision, and [`TensorError::ShapeMismatch`] if dimensions disagree.
pub fn solve(a: &Tensor, b: &[f32]) -> Result<Vec<f32>, TensorError> {
    let dims = a.dims();
    if a.shape().rank() != 2 || dims[0] != dims[1] || dims[0] != b.len() {
        return Err(TensorError::ShapeMismatch {
            op: "solve",
            lhs: dims.to_vec(),
            rhs: vec![b.len()],
        });
    }
    let n = dims[0];
    let mut m: Vec<f64> = a.as_slice().iter().map(|&v| v as f64).collect();
    let mut rhs: Vec<f64> = b.iter().map(|&v| v as f64).collect();

    for col in 0..n {
        // Partial pivot: largest magnitude entry on or below the diagonal.
        let mut pivot = col;
        for row in col + 1..n {
            if m[row * n + col].abs() > m[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if m[pivot * n + col].abs() < 1e-12 {
            return Err(TensorError::Numerical("singular matrix in solve"));
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            rhs.swap(col, pivot);
        }
        let diag = m[col * n + col];
        for row in col + 1..n {
            let factor = m[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in row + 1..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Ok(x.into_iter().map(|v| v as f32).collect())
}

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted ascending
/// and `eigenvectors` an `n×n` tensor whose *rows* are the corresponding
/// unit eigenvectors. Ascending order is what LLE wants: the embedding
/// coordinates are the eigenvectors of the 2nd..(d+1)th *smallest*
/// eigenvalues.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] for non-square input and
/// [`TensorError::Numerical`] if the sweep fails to converge in 100
/// iterations (symmetric input always converges far sooner).
pub fn symmetric_eigen(a: &Tensor) -> Result<(Vec<f32>, Tensor), TensorError> {
    let dims = a.dims();
    if a.shape().rank() != 2 || dims[0] != dims[1] {
        return Err(TensorError::ShapeMismatch {
            op: "symmetric_eigen",
            lhs: dims.to_vec(),
            rhs: vec![],
        });
    }
    let n = dims[0];
    let mut m: Vec<f64> = a.as_slice().iter().map(|&v| v as f64).collect();
    // v starts as identity; accumulates the product of rotations.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off_diag_norm = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[i * n + j] * m[i * n + j];
                }
            }
        }
        s.sqrt()
    };

    let mut converged = false;
    for _sweep in 0..100 {
        if off_diag_norm(&m) < 1e-10 {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-14 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged && off_diag_norm(&m) >= 1e-6 {
        return Err(TensorError::Numerical("jacobi sweep did not converge"));
    }

    // Collect (eigenvalue, column index), sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    let eigs: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    order.sort_by(|&x, &y| eigs[x].partial_cmp(&eigs[y]).expect("non-NaN eigenvalues"));

    let values: Vec<f32> = order.iter().map(|&i| eigs[i] as f32).collect();
    let mut vectors = Tensor::zeros(&[n, n]);
    for (row, &col) in order.iter().enumerate() {
        for k in 0..n {
            vectors.as_mut_slice()[row * n + k] = v[k * n + col] as f32;
        }
    }
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
        let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 3.0], &[2, 2]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-5);
        assert!((x[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solve_rejects_singular() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 2.0, 4.0], &[2, 2]).unwrap();
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(TensorError::Numerical(_))));
    }

    #[test]
    fn solve_residual_random_spd() {
        // Verify a larger system by residual, constructing A = B·Bᵀ + I.
        let n = 8;
        let b = Tensor::from_fn(&[n, n], |i| ((i * 2654435761) % 97) as f32 / 97.0 - 0.5);
        let bt = b.transposed().unwrap();
        let mut a = b.matmul(&bt).unwrap();
        for i in 0..n {
            let v = a.get(&[i, i]).unwrap();
            a.set(&[i, i], v + 1.0).unwrap();
        }
        let rhs: Vec<f32> = (0..n).map(|i| i as f32 - 3.0).collect();
        let x = solve(&a, &rhs).unwrap();
        // residual = A x - rhs
        for i in 0..n {
            let mut acc = 0.0f32;
            for j in 0..n {
                acc += a.get(&[i, j]).unwrap() * x[j];
            }
            assert!((acc - rhs[i]).abs() < 1e-3, "row {i} residual too large");
        }
    }

    #[test]
    fn eigen_diagonal_matrix() {
        let a = Tensor::from_vec(
            vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0],
            &[3, 3],
        )
        .unwrap();
        let (vals, _) = symmetric_eigen(&a).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-5);
        assert!((vals[1] - 2.0).abs() < 1e-5);
        assert!((vals[2] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3 with vectors (1,-1), (1,1).
        let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 2.0], &[2, 2]).unwrap();
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-5);
        assert!((vals[1] - 3.0).abs() < 1e-5);
        let v0 = [vecs.get(&[0, 0]).unwrap(), vecs.get(&[0, 1]).unwrap()];
        assert!(
            (v0[0] + v0[1]).abs() < 1e-4,
            "eigenvector for λ=1 is (1,-1) direction, got {v0:?}"
        );
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        // A = Σ λ_i v_i v_iᵀ must reproduce the input.
        let n = 5;
        let mut a = Tensor::zeros(&[n, n]);
        for i in 0..n {
            for j in 0..n {
                let v = ((i * 7 + j * 3) % 11) as f32 / 11.0;
                a.set(&[i, j], v).unwrap();
            }
        }
        // Symmetrise.
        let at = a.transposed().unwrap();
        let sym = a.add(&at).unwrap().scaled(0.5);
        let (vals, vecs) = symmetric_eigen(&sym).unwrap();
        let mut recon = Tensor::zeros(&[n, n]);
        for (idx, &lambda) in vals.iter().enumerate() {
            for i in 0..n {
                for j in 0..n {
                    let vi = vecs.get(&[idx, i]).unwrap();
                    let vj = vecs.get(&[idx, j]).unwrap();
                    let cur = recon.get(&[i, j]).unwrap();
                    recon.set(&[i, j], cur + lambda * vi * vj).unwrap();
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let d = (recon.get(&[i, j]).unwrap() - sym.get(&[i, j]).unwrap()).abs();
                assert!(d < 1e-4, "reconstruction error {d} at ({i},{j})");
            }
        }
    }

    #[test]
    fn eigen_vectors_are_orthonormal() {
        let a = Tensor::from_vec(
            vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 1.0],
            &[3, 3],
        )
        .unwrap();
        let (_, vecs) = symmetric_eigen(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut dot = 0.0f32;
                for k in 0..3 {
                    dot += vecs.get(&[i, k]).unwrap() * vecs.get(&[j, k]).unwrap();
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-4);
            }
        }
    }
}
