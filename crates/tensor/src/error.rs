use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements does not match the requested shape.
    LengthMismatch {
        /// Elements supplied by the caller.
        len: usize,
        /// Elements the shape requires.
        expected: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// A shape with zero dimensions or a zero-sized axis was rejected.
    EmptyShape,
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat or per-axis index.
        index: usize,
        /// The bound that was exceeded.
        bound: usize,
    },
    /// A linear-algebra routine failed to converge or met a singular matrix.
    Numerical(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, expected } => {
                write!(f, "data length {len} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "incompatible shapes for {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::EmptyShape => write!(f, "empty shapes are not permitted"),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for extent {bound}")
            }
            TensorError::Numerical(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl Error for TensorError {}
