//! Convolution lowering: `im2col` / `col2im`, the same strategy the paper's
//! Darknet substrate uses to express convolutions as GEMM.
//!
//! For an input feature map of shape `[channels, height, width]`, a `k×k`
//! kernel with stride `s` and padding `p`, `im2col` produces a matrix of
//! shape `[channels·k·k, out_h·out_w]`; a convolution with `f` filters is
//! then the GEMM `[f, channels·k·k] × [channels·k·k, out_h·out_w]`.

/// Output spatial extent of a convolution/pooling window sweep.
///
/// `extent` is the input height or width; the formula matches Darknet's
/// `(extent + 2*pad - size) / stride + 1` with truncating division.
pub fn conv_out_extent(extent: usize, size: usize, stride: usize, pad: usize) -> usize {
    (extent + 2 * pad - size) / stride + 1
}

/// Lowers `input` (`[channels, height, width]`, row-major) into the column
/// matrix expected by the convolution GEMM.
///
/// `output` must have length `channels * size * size * out_h * out_w`.
/// Out-of-image taps (from padding) contribute zeros.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_extent(height, size, stride, pad);
    let out_w = conv_out_extent(width, size, stride, pad);
    assert_eq!(input.len(), channels * height * width, "input geometry");
    assert_eq!(
        output.len(),
        channels * size * size * out_h * out_w,
        "column geometry"
    );

    let channel_cols = size * size;
    for c in 0..channels {
        let in_plane = &input[c * height * width..(c + 1) * height * width];
        for kidx in 0..channel_cols {
            let ky = kidx / size;
            let kx = kidx % size;
            let row = (c * channel_cols + kidx) * out_h * out_w;
            for oy in 0..out_h {
                let iy = (oy * stride + ky) as isize - pad as isize;
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    let v = if iy >= 0 && iy < height as isize && ix >= 0 && ix < width as isize
                    {
                        in_plane[iy as usize * width + ix as usize]
                    } else {
                        0.0
                    };
                    output[row + oy * out_w + ox] = v;
                }
            }
        }
    }
}

/// Like [`im2col`] but emits the *transposed* column matrix, shape
/// `[out_h·out_w, channels·size·size]` row-major.
///
/// The weight-gradient GEMM is `dW = δ · colsᵀ`; with the plain layout
/// that is a dot-product kernel whose single serial accumulator chain
/// cannot vectorise (~3 GFLOP/s measured). With the transposed layout it
/// becomes a standard `A·B` GEMM with contiguous `B` rows and runs on
/// the saxpy-form kernels (~16 GFLOP/s scalar, ~36 on the SIMD rung) —
/// same multiply/add sequence per output element, so results stay
/// bit-identical.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn im2col_transposed(
    input: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_extent(height, size, stride, pad);
    let out_w = conv_out_extent(width, size, stride, pad);
    assert_eq!(input.len(), channels * height * width, "input geometry");
    assert_eq!(
        output.len(),
        channels * size * size * out_h * out_w,
        "column geometry"
    );

    let channel_cols = size * size;
    let ckk = channels * channel_cols;
    for c in 0..channels {
        let in_plane = &input[c * height * width..(c + 1) * height * width];
        for kidx in 0..channel_cols {
            let ky = kidx / size;
            let kx = kidx % size;
            let col = c * channel_cols + kidx;
            for oy in 0..out_h {
                let iy = (oy * stride + ky) as isize - pad as isize;
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    let v = if iy >= 0 && iy < height as isize && ix >= 0 && ix < width as isize
                    {
                        in_plane[iy as usize * width + ix as usize]
                    } else {
                        0.0
                    };
                    output[(oy * out_w + ox) * ckk + col] = v;
                }
            }
        }
    }
}

/// Lowers a whole batch (`[n, channels, height, width]`, row-major) into
/// **one** wide column matrix of shape `[channels·size·size, n·out_h·out_w]`,
/// sample-major along the column axis: column `s·out_h·out_w + (oy·out_w + ox)`
/// holds sample `s`'s window at `(oy, ox)`.
///
/// This is the whole-batch GEMM lowering: a convolution over the batch
/// becomes the single GEMM `[f, ckk] × [ckk, n·ohw]` instead of `n`
/// small `[f, ckk] × [ckk, ohw]` ones, giving the blocked kernel rows
/// `n×` longer to stream. Each output element's dot product reads
/// exactly the values the per-sample lowering reads, in the same
/// ascending-`p` order, so the batched path is **bit-identical** to the
/// per-sample path — only kernel overheads are amortised.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn im2col_batch(
    input: &[f32],
    n: usize,
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let ckk = channels * size * size;
    assert_eq!(
        output.len(),
        ckk * n * conv_out_extent(height, size, stride, pad)
            * conv_out_extent(width, size, stride, pad),
        "column geometry"
    );
    im2col_batch_rows(input, n, channels, height, width, size, stride, pad, 0..ckk, output);
}

/// Emits a contiguous **row range** of the [`im2col_batch`] column
/// matrix (rows are `(channel, ky, kx)` taps, `row = c·size² + ky·size
/// + kx`), writing into `output` — the `rows.len() · n·out_h·out_w`
/// chunk for that range.
///
/// Rows are independent (each is a pure gather from the input), so
/// workers can build the one shared wide column matrix cooperatively by
/// splitting the row axis — the lowering-side counterpart of the
/// row-tiled shared GEMM. Any split produces the exact bytes of the
/// full call.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn im2col_batch_rows(
    input: &[f32],
    n: usize,
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    rows: std::ops::Range<usize>,
    output: &mut [f32],
) {
    let out_h = conv_out_extent(height, size, stride, pad);
    let out_w = conv_out_extent(width, size, stride, pad);
    let ohw = out_h * out_w;
    let wide = n * ohw;
    let sample = channels * height * width;
    assert_eq!(input.len(), n * sample, "input geometry");
    assert!(rows.end <= channels * size * size, "row range exceeds ckk");
    assert_eq!(output.len(), rows.len() * wide, "column geometry");

    let channel_cols = size * size;
    for (local, row) in rows.enumerate() {
        let c = row / channel_cols;
        let kidx = row % channel_cols;
        let ky = kidx / size;
        let kx = kidx % size;
        let row_base = local * wide;
        for s in 0..n {
            let in_plane = &input[s * sample + c * height * width..][..height * width];
            let base = row_base + s * ohw;
            for oy in 0..out_h {
                let iy = (oy * stride + ky) as isize - pad as isize;
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    let v = if iy >= 0
                        && iy < height as isize
                        && ix >= 0
                        && ix < width as isize
                    {
                        in_plane[iy as usize * width + ix as usize]
                    } else {
                        0.0
                    };
                    output[base + oy * out_w + ox] = v;
                }
            }
        }
    }
}

/// Scatters a **batched** wide column matrix (the [`im2col_batch`]
/// layout, `[channels·size·size, n·out_h·out_w]`) back onto a batch of
/// images `[n, channels, height, width]`, accumulating overlapping taps.
///
/// The adjoint of [`im2col_batch`] — used by the whole-batch backward
/// input-delta path. Each output pixel accumulates its taps in the same
/// kernel-index-ascending order as the per-sample [`col2im`], so results
/// are bit-identical to `n` separate scatters.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im_batch(
    columns: &[f32],
    n: usize,
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_extent(height, size, stride, pad);
    let out_w = conv_out_extent(width, size, stride, pad);
    let ohw = out_h * out_w;
    let wide = n * ohw;
    let sample = channels * height * width;
    assert_eq!(columns.len(), channels * size * size * wide, "column geometry");
    assert_eq!(output.len(), n * sample, "image geometry");

    let channel_cols = size * size;
    for s in 0..n {
        for c in 0..channels {
            let out_plane =
                &mut output[s * sample + c * height * width..][..height * width];
            for kidx in 0..channel_cols {
                let ky = kidx / size;
                let kx = kidx % size;
                let base = (c * channel_cols + kidx) * wide + s * ohw;
                for oy in 0..out_h {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= height as isize {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= width as isize {
                            continue;
                        }
                        out_plane[iy as usize * width + ix as usize] +=
                            columns[base + oy * out_w + ox];
                    }
                }
            }
        }
    }
}

/// Scatters a column matrix back onto an image, accumulating overlapping
/// taps — the adjoint of [`im2col`], used to backpropagate deltas through a
/// convolution.
///
/// `output` must be pre-zeroed by the caller if plain gradients are wanted;
/// values are accumulated (`+=`) so deltas from multiple sources can be
/// merged.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    columns: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_extent(height, size, stride, pad);
    let out_w = conv_out_extent(width, size, stride, pad);
    assert_eq!(
        columns.len(),
        channels * size * size * out_h * out_w,
        "column geometry"
    );
    assert_eq!(output.len(), channels * height * width, "image geometry");

    let channel_cols = size * size;
    for c in 0..channels {
        let out_plane = &mut output[c * height * width..(c + 1) * height * width];
        for kidx in 0..channel_cols {
            let ky = kidx / size;
            let kx = kidx % size;
            let row = (c * channel_cols + kidx) * out_h * out_w;
            for oy in 0..out_h {
                let iy = (oy * stride + ky) as isize - pad as isize;
                if iy < 0 || iy >= height as isize {
                    continue;
                }
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    if ix < 0 || ix >= width as isize {
                        continue;
                    }
                    out_plane[iy as usize * width + ix as usize] +=
                        columns[row + oy * out_w + ox];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_matches_darknet_formula() {
        assert_eq!(conv_out_extent(28, 3, 1, 1), 28);
        assert_eq!(conv_out_extent(28, 2, 2, 0), 14);
        assert_eq!(conv_out_extent(7, 1, 1, 0), 7);
        assert_eq!(conv_out_extent(5, 3, 2, 0), 2);
    }

    #[test]
    fn identity_kernel_roundtrip() {
        // 1x1 kernel, stride 1, no pad: im2col is the identity layout.
        let input: Vec<f32> = (0..2 * 3 * 3).map(|v| v as f32).collect();
        let mut cols = vec![0.0; input.len()];
        im2col(&input, 2, 3, 3, 1, 1, 0, &mut cols);
        assert_eq!(cols, input);

        let mut back = vec![0.0; input.len()];
        col2im(&cols, 2, 3, 3, 1, 1, 0, &mut back);
        assert_eq!(back, input);
    }

    #[test]
    fn padded_window_reads_zeros() {
        // Single channel 2x2 image, 3x3 kernel, pad 1 -> 2x2 output.
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let mut cols = vec![0.0; 9 * 4];
        im2col(&input, 1, 2, 2, 3, 1, 1, &mut cols);
        // Kernel tap (0,0) for output (0,0) reads (-1,-1) -> padding zero.
        assert_eq!(cols[0], 0.0);
        // Kernel tap (1,1) (centre) for output (0,0) reads pixel (0,0) = 1.
        let centre_row = 4 * 4; // kidx=4 (ky=1,kx=1), out position 0
        assert_eq!(cols[centre_row], 1.0);
    }

    #[test]
    fn transposed_is_exact_transpose() {
        // 2 channels, 4x4 image, 3x3 kernel, stride 1, pad 1.
        let input: Vec<f32> = (0..2 * 16).map(|v| v as f32 * 0.5 - 3.0).collect();
        let (ckk, ohw) = (2 * 9, 16);
        let mut cols = vec![0.0; ckk * ohw];
        im2col(&input, 2, 4, 4, 3, 1, 1, &mut cols);
        let mut cols_t = vec![0.0; ckk * ohw];
        im2col_transposed(&input, 2, 4, 4, 3, 1, 1, &mut cols_t);
        for row in 0..ckk {
            for col in 0..ohw {
                assert_eq!(
                    cols[row * ohw + col].to_bits(),
                    cols_t[col * ckk + row].to_bits(),
                    "({row}, {col})"
                );
            }
        }
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // 3x3 image, 3x3 kernel, stride 1, pad 1: centre pixel appears in
        // all 9 windows, corners in 4.
        let input = vec![1.0f32; 9];
        let mut cols = vec![0.0; 9 * 9];
        im2col(&input, 1, 3, 3, 3, 1, 1, &mut cols);
        let mut back = vec![0.0; 9];
        col2im(&cols, 1, 3, 3, 3, 1, 1, &mut back);
        assert_eq!(back[4], 9.0, "centre pixel participates in 9 windows");
        assert_eq!(back[0], 4.0, "corner pixel participates in 4 windows");
        assert_eq!(back[1], 6.0, "edge pixel participates in 6 windows");
    }

    #[test]
    fn batched_columns_are_per_sample_columns_bitwise() {
        // 3 samples, 2 channels, 4x4, 3x3/1 pad 1 -> per-sample 18x16.
        let (n, c, hw) = (3usize, 2usize, 4usize);
        let input: Vec<f32> =
            (0..n * c * hw * hw).map(|v| (v as f32) * 0.37 - 5.0).collect();
        let (ckk, ohw) = (c * 9, hw * hw);
        let mut wide = vec![0.0; ckk * n * ohw];
        im2col_batch(&input, n, c, hw, hw, 3, 1, 1, &mut wide);
        let mut single = vec![0.0; ckk * ohw];
        for s in 0..n {
            im2col(&input[s * c * hw * hw..(s + 1) * c * hw * hw], c, hw, hw, 3, 1, 1, &mut single);
            for row in 0..ckk {
                for o in 0..ohw {
                    assert_eq!(
                        wide[row * n * ohw + s * ohw + o].to_bits(),
                        single[row * ohw + o].to_bits(),
                        "sample {s} ({row}, {o})"
                    );
                }
            }
        }
    }

    #[test]
    fn row_range_splits_reproduce_full_columns() {
        // Cooperative im2col: any row split writes the exact bytes of
        // the single full call.
        let (n, c, hw) = (3usize, 2usize, 4usize);
        let input: Vec<f32> =
            (0..n * c * hw * hw).map(|v| (v as f32) * 0.73 - 7.0).collect();
        let (ckk, ohw) = (c * 9, hw * hw);
        let mut full = vec![0.0; ckk * n * ohw];
        im2col_batch(&input, n, c, hw, hw, 3, 1, 1, &mut full);
        for parts in [1usize, 2, 3, 5, ckk] {
            let mut split = vec![f32::NAN; full.len()];
            let per = ckk.div_ceil(parts);
            let mut start = 0;
            while start < ckk {
                let end = (start + per).min(ckk);
                im2col_batch_rows(
                    &input, n, c, hw, hw, 3, 1, 1,
                    start..end,
                    &mut split[start * n * ohw..end * n * ohw],
                );
                start = end;
            }
            for i in 0..full.len() {
                assert_eq!(split[i].to_bits(), full[i].to_bits(), "parts={parts} at {i}");
            }
        }
    }

    #[test]
    fn batched_col2im_equals_per_sample_scatter() {
        let (n, c, hw) = (2usize, 1usize, 3usize);
        let (ckk, ohw) = (9usize, 9usize);
        let columns: Vec<f32> =
            (0..ckk * n * ohw).map(|v| ((v * 13) % 7) as f32 - 3.0).collect();
        let mut batched = vec![0.0; n * c * hw * hw];
        col2im_batch(&columns, n, c, hw, hw, 3, 1, 1, &mut batched);
        for s in 0..n {
            // Extract sample s's column submatrix and scatter it alone.
            let mut sub = vec![0.0; ckk * ohw];
            for row in 0..ckk {
                sub[row * ohw..(row + 1) * ohw]
                    .copy_from_slice(&columns[row * n * ohw + s * ohw..][..ohw]);
            }
            let mut single = vec![0.0; c * hw * hw];
            col2im(&sub, c, hw, hw, 3, 1, 1, &mut single);
            for (a, b) in batched[s * c * hw * hw..(s + 1) * c * hw * hw].iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batched_gemm_equals_per_sample_gemms_bitwise() {
        use crate::gemm::{gemm_blocked, gemm_strict};
        // The whole-batch lowering claim, end to end: one wide GEMM over
        // the batched columns produces, per sample, the exact bits of
        // the per-sample GEMMs — on both kernel paths.
        let (n, c, hw, filters) = (3usize, 2usize, 5usize, 4usize);
        let (ckk, ohw) = (c * 9, hw * hw);
        let input: Vec<f32> =
            (0..n * c * hw * hw).map(|v| ((v * 29) % 17) as f32 / 7.0 - 1.1).collect();
        let weights: Vec<f32> =
            (0..filters * ckk).map(|v| ((v * 31) % 13) as f32 / 5.0 - 1.2).collect();

        let mut wide_cols = vec![0.0; ckk * n * ohw];
        im2col_batch(&input, n, c, hw, hw, 3, 1, 1, &mut wide_cols);
        let mut wide_out = vec![0.0; filters * n * ohw];
        gemm_strict(filters, n * ohw, ckk, &weights, &wide_cols, &mut wide_out);
        let mut wide_out_blocked = vec![0.0; filters * n * ohw];
        gemm_blocked(filters, n * ohw, ckk, &weights, &wide_cols, &mut wide_out_blocked);

        let mut cols = vec![0.0; ckk * ohw];
        for s in 0..n {
            im2col(&input[s * c * hw * hw..(s + 1) * c * hw * hw], c, hw, hw, 3, 1, 1, &mut cols);
            let mut out = vec![0.0; filters * ohw];
            gemm_strict(filters, ohw, ckk, &weights, &cols, &mut out);
            for f in 0..filters {
                for o in 0..ohw {
                    let wide_idx = f * n * ohw + s * ohw + o;
                    assert_eq!(
                        wide_out[wide_idx].to_bits(),
                        out[f * ohw + o].to_bits(),
                        "strict sample {s} ({f}, {o})"
                    );
                    assert_eq!(
                        wide_out_blocked[wide_idx].to_bits(),
                        out[f * ohw + o].to_bits(),
                        "blocked sample {s} ({f}, {o})"
                    );
                }
            }
        }
    }

    #[test]
    fn conv_via_gemm_matches_direct() {
        use crate::gemm::gemm_strict;
        // 1 channel 4x4, one 3x3 averaging filter, stride 1, pad 0 -> 2x2.
        let input: Vec<f32> = (1..=16).map(|v| v as f32).collect();
        let filter = vec![1.0f32 / 9.0; 9];
        let mut cols = vec![0.0; 9 * 4];
        im2col(&input, 1, 4, 4, 3, 1, 0, &mut cols);
        let mut out = vec![0.0; 4];
        gemm_strict(1, 4, 9, &filter, &cols, &mut out);

        // Direct convolution for reference.
        let mut expect = vec![0.0f32; 4];
        for oy in 0..2 {
            for ox in 0..2 {
                let mut acc = 0.0;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += input[(oy + ky) * 4 + (ox + kx)] / 9.0;
                    }
                }
                expect[oy * 2 + ox] = acc;
            }
        }
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
