//! Convolution lowering: `im2col` / `col2im`, the same strategy the paper's
//! Darknet substrate uses to express convolutions as GEMM.
//!
//! For an input feature map of shape `[channels, height, width]`, a `k×k`
//! kernel with stride `s` and padding `p`, `im2col` produces a matrix of
//! shape `[channels·k·k, out_h·out_w]`; a convolution with `f` filters is
//! then the GEMM `[f, channels·k·k] × [channels·k·k, out_h·out_w]`.

/// Output spatial extent of a convolution/pooling window sweep.
///
/// `extent` is the input height or width; the formula matches Darknet's
/// `(extent + 2*pad - size) / stride + 1` with truncating division.
pub fn conv_out_extent(extent: usize, size: usize, stride: usize, pad: usize) -> usize {
    (extent + 2 * pad - size) / stride + 1
}

/// Lowers `input` (`[channels, height, width]`, row-major) into the column
/// matrix expected by the convolution GEMM.
///
/// `output` must have length `channels * size * size * out_h * out_w`.
/// Out-of-image taps (from padding) contribute zeros.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_extent(height, size, stride, pad);
    let out_w = conv_out_extent(width, size, stride, pad);
    assert_eq!(input.len(), channels * height * width, "input geometry");
    assert_eq!(
        output.len(),
        channels * size * size * out_h * out_w,
        "column geometry"
    );

    let channel_cols = size * size;
    for c in 0..channels {
        let in_plane = &input[c * height * width..(c + 1) * height * width];
        for kidx in 0..channel_cols {
            let ky = kidx / size;
            let kx = kidx % size;
            let row = (c * channel_cols + kidx) * out_h * out_w;
            for oy in 0..out_h {
                let iy = (oy * stride + ky) as isize - pad as isize;
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    let v = if iy >= 0 && iy < height as isize && ix >= 0 && ix < width as isize
                    {
                        in_plane[iy as usize * width + ix as usize]
                    } else {
                        0.0
                    };
                    output[row + oy * out_w + ox] = v;
                }
            }
        }
    }
}

/// Like [`im2col`] but emits the *transposed* column matrix, shape
/// `[out_h·out_w, channels·size·size]` row-major.
///
/// The weight-gradient GEMM is `dW = δ · colsᵀ`; with the plain layout
/// that is a dot-product kernel whose single serial accumulator chain
/// cannot vectorise (~3 GFLOP/s measured). With the transposed layout it
/// becomes a standard `A·B` GEMM with contiguous `B` rows and runs on
/// the saxpy-form kernels (~16 GFLOP/s) — same multiply/add sequence
/// per output element, so results stay bit-identical.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn im2col_transposed(
    input: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_extent(height, size, stride, pad);
    let out_w = conv_out_extent(width, size, stride, pad);
    assert_eq!(input.len(), channels * height * width, "input geometry");
    assert_eq!(
        output.len(),
        channels * size * size * out_h * out_w,
        "column geometry"
    );

    let channel_cols = size * size;
    let ckk = channels * channel_cols;
    for c in 0..channels {
        let in_plane = &input[c * height * width..(c + 1) * height * width];
        for kidx in 0..channel_cols {
            let ky = kidx / size;
            let kx = kidx % size;
            let col = c * channel_cols + kidx;
            for oy in 0..out_h {
                let iy = (oy * stride + ky) as isize - pad as isize;
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    let v = if iy >= 0 && iy < height as isize && ix >= 0 && ix < width as isize
                    {
                        in_plane[iy as usize * width + ix as usize]
                    } else {
                        0.0
                    };
                    output[(oy * out_w + ox) * ckk + col] = v;
                }
            }
        }
    }
}

/// Scatters a column matrix back onto an image, accumulating overlapping
/// taps — the adjoint of [`im2col`], used to backpropagate deltas through a
/// convolution.
///
/// `output` must be pre-zeroed by the caller if plain gradients are wanted;
/// values are accumulated (`+=`) so deltas from multiple sources can be
/// merged.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    columns: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_extent(height, size, stride, pad);
    let out_w = conv_out_extent(width, size, stride, pad);
    assert_eq!(
        columns.len(),
        channels * size * size * out_h * out_w,
        "column geometry"
    );
    assert_eq!(output.len(), channels * height * width, "image geometry");

    let channel_cols = size * size;
    for c in 0..channels {
        let out_plane = &mut output[c * height * width..(c + 1) * height * width];
        for kidx in 0..channel_cols {
            let ky = kidx / size;
            let kx = kidx % size;
            let row = (c * channel_cols + kidx) * out_h * out_w;
            for oy in 0..out_h {
                let iy = (oy * stride + ky) as isize - pad as isize;
                if iy < 0 || iy >= height as isize {
                    continue;
                }
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    if ix < 0 || ix >= width as isize {
                        continue;
                    }
                    out_plane[iy as usize * width + ix as usize] +=
                        columns[row + oy * out_w + ox];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_matches_darknet_formula() {
        assert_eq!(conv_out_extent(28, 3, 1, 1), 28);
        assert_eq!(conv_out_extent(28, 2, 2, 0), 14);
        assert_eq!(conv_out_extent(7, 1, 1, 0), 7);
        assert_eq!(conv_out_extent(5, 3, 2, 0), 2);
    }

    #[test]
    fn identity_kernel_roundtrip() {
        // 1x1 kernel, stride 1, no pad: im2col is the identity layout.
        let input: Vec<f32> = (0..2 * 3 * 3).map(|v| v as f32).collect();
        let mut cols = vec![0.0; input.len()];
        im2col(&input, 2, 3, 3, 1, 1, 0, &mut cols);
        assert_eq!(cols, input);

        let mut back = vec![0.0; input.len()];
        col2im(&cols, 2, 3, 3, 1, 1, 0, &mut back);
        assert_eq!(back, input);
    }

    #[test]
    fn padded_window_reads_zeros() {
        // Single channel 2x2 image, 3x3 kernel, pad 1 -> 2x2 output.
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let mut cols = vec![0.0; 9 * 4];
        im2col(&input, 1, 2, 2, 3, 1, 1, &mut cols);
        // Kernel tap (0,0) for output (0,0) reads (-1,-1) -> padding zero.
        assert_eq!(cols[0], 0.0);
        // Kernel tap (1,1) (centre) for output (0,0) reads pixel (0,0) = 1.
        let centre_row = 4 * 4; // kidx=4 (ky=1,kx=1), out position 0
        assert_eq!(cols[centre_row], 1.0);
    }

    #[test]
    fn transposed_is_exact_transpose() {
        // 2 channels, 4x4 image, 3x3 kernel, stride 1, pad 1.
        let input: Vec<f32> = (0..2 * 16).map(|v| v as f32 * 0.5 - 3.0).collect();
        let (ckk, ohw) = (2 * 9, 16);
        let mut cols = vec![0.0; ckk * ohw];
        im2col(&input, 2, 4, 4, 3, 1, 1, &mut cols);
        let mut cols_t = vec![0.0; ckk * ohw];
        im2col_transposed(&input, 2, 4, 4, 3, 1, 1, &mut cols_t);
        for row in 0..ckk {
            for col in 0..ohw {
                assert_eq!(
                    cols[row * ohw + col].to_bits(),
                    cols_t[col * ckk + row].to_bits(),
                    "({row}, {col})"
                );
            }
        }
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // 3x3 image, 3x3 kernel, stride 1, pad 1: centre pixel appears in
        // all 9 windows, corners in 4.
        let input = vec![1.0f32; 9];
        let mut cols = vec![0.0; 9 * 9];
        im2col(&input, 1, 3, 3, 3, 1, 1, &mut cols);
        let mut back = vec![0.0; 9];
        col2im(&cols, 1, 3, 3, 3, 1, 1, &mut back);
        assert_eq!(back[4], 9.0, "centre pixel participates in 9 windows");
        assert_eq!(back[0], 4.0, "corner pixel participates in 4 windows");
        assert_eq!(back[1], 6.0, "edge pixel participates in 6 windows");
    }

    #[test]
    fn conv_via_gemm_matches_direct() {
        use crate::gemm::gemm_strict;
        // 1 channel 4x4, one 3x3 averaging filter, stride 1, pad 0 -> 2x2.
        let input: Vec<f32> = (1..=16).map(|v| v as f32).collect();
        let filter = vec![1.0f32 / 9.0; 9];
        let mut cols = vec![0.0; 9 * 4];
        im2col(&input, 1, 4, 4, 3, 1, 0, &mut cols);
        let mut out = vec![0.0; 4];
        gemm_strict(1, 4, 9, &filter, &cols, &mut out);

        // Direct convolution for reference.
        let mut expect = vec![0.0f32; 4];
        for oy in 0..2 {
            for ox in 0..2 {
                let mut acc = 0.0;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += input[(oy + ky) * 4 + (ox + kx)] / 9.0;
                    }
                }
                expect[oy * 2 + ox] = acc;
            }
        }
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
