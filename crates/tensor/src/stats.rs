//! Statistical helpers shared across the CalTrain pipeline: softmax,
//! Kullback–Leibler divergence and summary statistics.
//!
//! The KL divergence here is *the* metric of paper §IV-B: the
//! information-exposure assessment computes
//! `δ = D_KL(Φ_val(x) ‖ Φ_val(IR_ij))` per intermediate representation and
//! compares it against the uniform-distribution baseline `δ_µ`.

/// Numerically-stable softmax over a slice of logits.
///
/// Subtracts the maximum before exponentiating, exactly as Darknet's
/// `softmax` does, so large logits cannot overflow.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// In-place variant of [`softmax`]: writes the distribution into `out`.
///
/// The allocation-free form the per-sample training loop uses — `out` is
/// typically a slice of the layer's (reused) output buffer. `logits` and
/// `out` may not alias (both are plain `&`/`&mut` borrows).
///
/// # Panics
///
/// Panics if `logits` is empty or the lengths differ.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    assert!(!logits.is_empty(), "softmax of empty slice");
    assert_eq!(logits.len(), out.len(), "softmax output length");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &v) in out.iter_mut().zip(logits) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Kullback–Leibler divergence `D_KL(p ‖ q)` in nats.
///
/// Both arguments are clamped below at `1e-10` before the log, matching the
/// paper's need for finite scores even when the validation network assigns
/// (numerically) zero mass to a class.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "distribution supports must match");
    assert!(!p.is_empty(), "empty distributions");
    const FLOOR: f32 = 1e-10;
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| {
            let pi = pi.max(FLOOR);
            let qi = qi.max(FLOOR);
            pi * (pi / qi).ln()
        })
        .sum()
}

/// The discrete uniform distribution over `n` classes.
///
/// Used as the paper's exposure lower-bound reference `µ ~ U{1, N}`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn uniform_distribution(n: usize) -> Vec<f32> {
    assert!(n > 0, "uniform distribution needs at least one class");
    vec![1.0 / n as f32; n]
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population standard deviation; 0.0 for slices shorter than 2.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Min and max of a slice as `(min, max)`; `None` for an empty slice.
pub fn min_max(xs: &[f32]) -> Option<(f32, f32)> {
    if xs.is_empty() {
        return None;
    }
    let mut lo = xs[0];
    let mut hi = xs[0];
    for &v in &xs[1..] {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    Some((lo, hi))
}

/// Total order on `f32` for rankings: finite values (and infinities) by
/// [`f32::total_cmp`], any NaN *after* every non-NaN regardless of the
/// NaN's sign bit.
///
/// Ranking distances or scores with `partial_cmp(..).expect(..)` panics
/// the moment one degenerate value turns up NaN — in the accountability
/// query path that would let a single broken fingerprint abort an entire
/// investigation. This comparator keeps such entries ordered (last)
/// instead of aborting.
pub fn cmp_nan_last(a: f32, b: f32) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.total_cmp(&b),
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
    }
}

/// Indices of the `k` largest values, descending (ties broken by index);
/// NaN scores rank below every real score instead of panicking.
///
/// Supports Top-1/Top-2 accuracy reporting (paper Figs. 3–4).
pub fn top_k_indices(xs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    // Descending by score with NaN last: a NaN entry compares Greater
    // in the boolean key, pushing it behind every real score. Among
    // comparable scores, partial_cmp keeps +0.0 == -0.0 a tie (broken
    // by index, per the contract above); it only returns None for NaN
    // pairs, which also fall to the index tiebreak.
    idx.sort_by(|&a, &b| {
        xs[a].is_nan()
            .cmp(&xs[b].is_nan())
            .then_with(|| xs[b].partial_cmp(&xs[a]).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = [0.2f32, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-6);
        let q = [0.5f32, 0.3, 0.2];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_known_value() {
        // D_KL([1,0] || [0.5,0.5]) = ln 2 (with the tiny floor on the zero).
        let d = kl_divergence(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((d - std::f32::consts::LN_2).abs() < 1e-4, "got {d}");
    }

    #[test]
    fn kl_asymmetric() {
        let p = [0.9f32, 0.1];
        let q = [0.1f32, 0.9];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() < 1e-6);
        let r = [0.6f32, 0.4];
        assert!((kl_divergence(&p, &r) - kl_divergence(&r, &p)).abs() > 1e-4);
    }

    #[test]
    fn uniform_sums_to_one() {
        let u = uniform_distribution(10);
        assert_eq!(u.len(), 10);
        assert!((u.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn summary_stats() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - 1.118_034).abs() < 1e-5);
        assert_eq!(min_max(&xs), Some((1.0, 4.0)));
        assert_eq!(min_max(&[]), None);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn top_k_ordering_and_ties() {
        let xs = [0.1f32, 0.9, 0.9, 0.3];
        assert_eq!(top_k_indices(&xs, 2), vec![1, 2]);
        assert_eq!(top_k_indices(&xs, 1), vec![1]);
        assert_eq!(top_k_indices(&xs, 10), vec![1, 2, 3, 0]);
    }

    #[test]
    fn top_k_ranks_nan_scores_last_without_panicking() {
        let xs = [0.1f32, f32::NAN, 0.9, -f32::NAN];
        assert_eq!(top_k_indices(&xs, 2), vec![2, 0]);
        assert_eq!(top_k_indices(&xs, 10), vec![2, 0, 1, 3], "NaNs last, by index");
        assert_eq!(
            top_k_indices(&[-f32::NAN, f32::NAN], 2),
            vec![0, 1],
            "NaN-NaN ties break by index, not sign bit"
        );
        assert_eq!(
            top_k_indices(&[-0.0f32, 0.0], 2),
            vec![0, 1],
            "+0.0 == -0.0 is a tie, broken by index"
        );
    }

    #[test]
    fn softmax_into_matches_allocating_form() {
        let logits = [1.5f32, -2.0, 0.25, 3.0, 3.0];
        let alloc = softmax(&logits);
        let mut inplace = [0.0f32; 5];
        softmax_into(&logits, &mut inplace);
        for (a, b) in alloc.iter().zip(&inplace) {
            assert_eq!(a.to_bits(), b.to_bits(), "in-place softmax must be bit-identical");
        }
    }

    #[test]
    fn cmp_nan_last_total_order() {
        use std::cmp::Ordering;
        assert_eq!(cmp_nan_last(1.0, 2.0), Ordering::Less);
        assert_eq!(cmp_nan_last(2.0, 1.0), Ordering::Greater);
        assert_eq!(cmp_nan_last(1.0, 1.0), Ordering::Equal);
        assert_eq!(cmp_nan_last(f32::INFINITY, f32::NAN), Ordering::Less);
        assert_eq!(cmp_nan_last(f32::NAN, f32::NEG_INFINITY), Ordering::Greater);
        assert_eq!(cmp_nan_last(-f32::NAN, 0.0), Ordering::Greater, "sign bit irrelevant");
        assert_eq!(cmp_nan_last(f32::NAN, f32::NAN), Ordering::Equal);
    }
}
