//! Batched L2 distances from one probe vector to a structure-of-arrays
//! block of candidate vectors — the rerank kernel of the accountability
//! serving tier (`caltrain_fingerprint::index`).
//!
//! # Layout
//!
//! The candidate block is **dimension-major**: a `dim × n` row-major
//! matrix whose row `d` holds component `d` of all `n` candidates
//! contiguously (`block[d * n + j]` is component `d` of candidate `j`).
//! That is the transpose of the obvious array-of-fingerprints layout,
//! and it is what lets the SIMD rung vectorise across *candidates*:
//! lanes own distinct columns `j`, every memory access is a contiguous
//! row segment, and each candidate's reduction stays the exact
//! ascending-`d` scalar chain.
//!
//! # Bitwise contract
//!
//! Both entry points compute, per candidate `j`,
//! `sqrt(Σ_d (block[d][j] − probe[d])²)` with the sum accumulated in
//! ascending `d` from `0.0`, separate mul and add (no FMA), and a final
//! IEEE square root — exactly the operation chain of
//! `Fingerprint::distance` in `caltrain-fingerprint`. The SIMD rung
//! ([`crate::simd::distances_simd`]) keeps the chain per lane and uses
//! the hardware's correctly-rounded vector sqrt, so
//! `distances_to_block == distances_to_block_strict == the scalar
//! pairwise distance`, down to the bit, on every backend. The
//! `simd_properties` proptests pin this at remainder-lane edge widths.

/// Strict scalar reference: per-candidate ascending-`d` chain.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `dim`, `n`.
pub fn distances_to_block_strict(dim: usize, n: usize, probe: &[f32], block: &[f32], out: &mut [f32]) {
    assert_eq!(probe.len(), dim, "probe must have dim components");
    assert_eq!(block.len(), dim * n, "block must be dim*n");
    assert_eq!(out.len(), n, "out must hold n distances");
    for j in 0..n {
        let mut acc = 0.0f32;
        for d in 0..dim {
            let diff = block[d * n + j] - probe[d];
            acc += diff * diff;
        }
        out[j] = acc.sqrt();
    }
}

/// Native dispatch: the SIMD rung when enabled ([`crate::simd::enabled`]
/// honours `CALTRAIN_SIMD=0`), the strict scalar chain otherwise —
/// bitwise identical either way.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `dim`, `n`.
pub fn distances_to_block(dim: usize, n: usize, probe: &[f32], block: &[f32], out: &mut [f32]) {
    if crate::simd::enabled() {
        crate::simd::distances_simd(dim, n, probe, block, out);
    } else {
        distances_to_block_strict(dim, n, probe, block, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    /// The scalar pairwise chain the fingerprint db uses, written out
    /// independently of the kernel under test.
    fn pairwise(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
    }

    #[test]
    fn strict_matches_pairwise_chain_bitwise() {
        for (dim, n) in [(1usize, 1usize), (3, 7), (10, 8), (16, 33), (5, 40)] {
            let probe = lcg(dim, 11);
            let cols: Vec<Vec<f32>> = (0..n).map(|j| lcg(dim, 100 + j as u64)).collect();
            // Transpose into the dim-major block layout.
            let mut block = vec![0.0f32; dim * n];
            for (j, col) in cols.iter().enumerate() {
                for d in 0..dim {
                    block[d * n + j] = col[d];
                }
            }
            let mut out = vec![0.0f32; n];
            distances_to_block_strict(dim, n, &probe, &block, &mut out);
            for (j, col) in cols.iter().enumerate() {
                assert_eq!(
                    out[j].to_bits(),
                    pairwise(col, &probe).to_bits(),
                    "dim={dim} n={n} j={j}"
                );
            }
        }
    }

    #[test]
    fn dispatch_matches_strict_bitwise() {
        for (dim, n) in [(1usize, 1usize), (4, 5), (10, 8), (16, 31), (7, 64), (12, 100)] {
            let probe = lcg(dim, 3);
            let block = lcg(dim * n, 5);
            let mut strict = vec![0.0f32; n];
            let mut native = vec![0.0f32; n];
            distances_to_block_strict(dim, n, &probe, &block, &mut strict);
            distances_to_block(dim, n, &probe, &block, &mut native);
            for j in 0..n {
                assert_eq!(strict[j].to_bits(), native[j].to_bits(), "dim={dim} n={n} j={j}");
            }
        }
    }

    #[test]
    fn nan_components_yield_nan_distances_not_panics() {
        let dim = 3;
        let n = 9;
        let mut block = lcg(dim * n, 9);
        block[n + 4] = f32::NAN; // component 1 of candidate 4
        let probe = lcg(dim, 2);
        let mut out = vec![0.0f32; n];
        distances_to_block(dim, n, &probe, &block, &mut out);
        assert!(out[4].is_nan());
        assert!(out.iter().enumerate().all(|(j, v)| j == 4 || v.is_finite()));
    }

    #[test]
    fn zero_candidates_is_a_no_op() {
        let probe = [1.0f32, 2.0];
        let mut out: Vec<f32> = Vec::new();
        distances_to_block(2, 0, &probe, &[], &mut out);
        distances_to_block_strict(2, 0, &probe, &[], &mut out);
    }
}
