use std::fmt;

use crate::TensorError;

/// The extents of a tensor, outermost axis first.
///
/// CalTrain's networks use `[channels, height, width]` for single images and
/// `[batch, channels, height, width]` for mini-batches, but `Shape` is
/// dimension-agnostic: fingerprints are rank-1, GEMM operands are rank-2.
///
/// # Example
///
/// ```
/// use caltrain_tensor::Shape;
///
/// let s = Shape::new(&[3, 28, 28])?;
/// assert_eq!(s.volume(), 3 * 28 * 28);
/// assert_eq!(s.rank(), 3);
/// # Ok::<(), caltrain_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from per-axis extents.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] if `dims` is empty or any axis is
    /// zero — degenerate tensors are never meaningful in this codebase and
    /// rejecting them early keeps every kernel free of emptiness checks.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() || dims.iter().any(|&d| d == 0) {
            return Err(TensorError::EmptyShape);
        }
        Ok(Shape { dims: dims.to_vec() })
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// The extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (elements, not bytes), one per axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for axis in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[axis] = strides[axis + 1] * self.dims[axis + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate exceeds its extent.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.len(),
                bound: self.dims.len(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl TryFrom<&[usize]> for Shape {
    type Error = TensorError;

    fn try_from(dims: &[usize]) -> Result<Self, Self::Error> {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dims(), &[2, 3, 4]);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn rejects_empty_and_zero() {
        assert_eq!(Shape::new(&[]), Err(TensorError::EmptyShape));
        assert_eq!(Shape::new(&[3, 0, 2]), Err(TensorError::EmptyShape));
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::new(&[7]).unwrap();
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn offsets() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
        assert!(s.offset(&[2, 0, 0]).is_err());
        assert!(s.offset(&[0, 0]).is_err());
    }

    #[test]
    fn display() {
        let s = Shape::new(&[3, 28, 28]).unwrap();
        assert_eq!(s.to_string(), "[3x28x28]");
    }
}
