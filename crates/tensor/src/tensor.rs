use std::fmt;

use crate::gemm;
use crate::{Shape, TensorError};

/// A dense, row-major, owned `f32` tensor.
///
/// `Tensor` is deliberately simple — no views, no broadcasting, no autograd.
/// The deep-learning framework built on top (`caltrain-nn`) implements
/// backpropagation explicitly, exactly as the paper's Darknet substrate does,
/// which keeps the in-enclave compute path auditable (a property the paper's
/// remote-attestation story relies on).
///
/// # Example
///
/// ```
/// use caltrain_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.volume(), 6);
/// assert_eq!(t.get(&[1, 2])?, 0.0);
/// # Ok::<(), caltrain_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero axis; shapes are
    /// programmer-supplied constants throughout this codebase.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims).expect("tensor shape must be non-empty");
        let volume = shape.volume();
        Tensor { shape, data: vec![0.0; volume] }
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero axis.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let mut t = Tensor::zeros(dims);
        t.data.fill(value);
        t
    }

    /// Creates the `n`-by-`n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer in a tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume, or [`TensorError::EmptyShape`] for degenerate dims.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Builds a tensor by evaluating `f` at every flat index.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is degenerate (see [`Tensor::zeros`]).
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let mut t = Tensor::zeros(dims);
        for (i, v) in t.data.iter_mut().enumerate() {
            *v = f(i);
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.data.len()
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for rank or bound
    /// violations.
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for rank or bound
    /// violations.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy with a new shape of identical volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshaped(&self, dims: &[usize]) -> Result<Self, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Elementwise sum of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with("add", rhs, |a, b| a + b)
    }

    /// Elementwise difference of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with("sub", rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with("mul", rhs, |a, b| a * b)
    }

    /// Returns a copy scaled by `k`.
    pub fn scaled(&self, k: f32) -> Tensor {
        self.map(|v| v * k)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place `self += k * rhs` (the BLAS `axpy` primitive used by SGD).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, k: f32, rhs: &Tensor) -> Result<(), TensorError> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += k * b;
        }
        Ok(())
    }

    /// Dot product over flattened elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if volumes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        if self.volume() != rhs.volume() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        Ok(self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum())
    }

    /// Rank-2 matrix multiply using the blocked (native-path) kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self` is `[m, k]` and
    /// `rhs` is `[k, n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k) = self.as_matrix_dims("matmul", rhs)?;
        let n = rhs.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        gemm::gemm_blocked(m, n, k, &self.data, &rhs.data, out.as_mut_slice());
        Ok(out)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the tensor is not rank-2.
    pub fn transposed(&self) -> Result<Tensor, TensorError> {
        if self.shape.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                op: "transpose",
                lhs: self.dims().to_vec(),
                rhs: vec![],
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Largest element (NaN-free data assumed; NaNs sort low).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (NaN-free data assumed; NaNs sort high).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element (first occurrence wins).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Euclidean distance to another tensor of equal volume.
    ///
    /// This is the fingerprint distance function from paper §IV-C.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if volumes differ.
    pub fn l2_distance(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        if self.volume() != rhs.volume() {
            return Err(TensorError::ShapeMismatch {
                op: "l2_distance",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut acc = 0.0f32;
        for (a, b) in self.data.iter().zip(&rhs.data) {
            let d = a - b;
            acc += d * d;
        }
        Ok(acc.sqrt())
    }

    /// Returns an L2-normalized copy; an all-zero tensor is returned
    /// unchanged (its norm is zero, so no direction exists to preserve).
    pub fn l2_normalized(&self) -> Tensor {
        let norm = self.l2_norm();
        if norm == 0.0 {
            self.clone()
        } else {
            self.scaled(1.0 / norm)
        }
    }

    fn zip_with(
        &self,
        op: &'static str,
        rhs: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    fn as_matrix_dims(
        &self,
        op: &'static str,
        rhs: &Tensor,
    ) -> Result<(usize, usize), TensorError> {
        if self.shape.rank() != 2 || rhs.shape.rank() != 2 || self.dims()[1] != rhs.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        Ok((self.dims()[0], self.dims()[1]))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.volume() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, .. {:.4}] (n={})",
                self.data[0],
                self.data[1],
                self.data[self.volume() - 1],
                self.volume()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn matmul_identity_and_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).unwrap(), a);

        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let att = a.transposed().unwrap().transposed().unwrap();
        assert_eq!(a, att);
        assert_eq!(a.transposed().unwrap().get(&[2, 1]).unwrap(), a.get(&[1, 2]).unwrap());
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![-1.0, 3.0, 2.0], &[3]).unwrap();
        assert_eq!(a.sum(), 4.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -1.0);
        assert_eq!(a.argmax(), 1);
    }

    #[test]
    fn l2_geometry() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.l2_norm(), 5.0);
        let unit = a.l2_normalized();
        assert!((unit.l2_norm() - 1.0).abs() < 1e-6);
        let b = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        assert_eq!(a.l2_distance(&b).unwrap(), 5.0);
        assert_eq!(b.l2_normalized().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let b = a.reshaped(&[3, 2]).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.reshaped(&[4, 2]).is_err());
    }
}
