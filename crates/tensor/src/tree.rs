//! Canonical fixed-shape binary tree reduction.
//!
//! # The determinism problem
//!
//! Floating-point addition is not associative, so "sum the per-sample
//! gradients" has as many answers as there are summation orders. The
//! runtime's core invariant — worker count never changes a result bit —
//! therefore forbids the obvious parallel reduction (each worker sums
//! its range, caller folds the partials), because the partial
//! boundaries *are* the worker count. Through PR 6 the conv layer
//! dodged this by staging every sample's `dw` separately
//! (`span·dw_len` floats!) and folding them in ascending sample order
//! on one thread.
//!
//! # The canonical tree
//!
//! This module replaces order-dependence with a **fixed-shape binary
//! tree over the sample index range**: the node covering `lo..hi`
//! splits at `mid = lo + (hi - lo) / 2`, recursively, down to
//! single-sample leaves. Every addition the reduction ever performs is
//! "left subtree total + right subtree total" for some tree node — a
//! shape fixed entirely by `hi - lo`. Any partitioning of the range
//! into *canonical subtrees* (ranges that are exact tree nodes, see
//! [`tree_ranges`]) can be reduced per-part and then combined along the
//! same tree ([`combine_tree_parts`]) and produces **bit-identical**
//! results, because both paths perform the exact same additions in the
//! exact same tree order — determinism by construction, the same story
//! canonical BN moments got in PR 5, rather than by testing luck.
//!
//! Memory: a reduction over `n` leaves of `width` floats needs one
//! `width` scratch row per tree level — `⌈log₂ n⌉·width` floats
//! ([`tree_levels`]) — replacing the `n·width` staging the fold needed.

use std::ops::Range;

/// The canonical split point of the tree node covering `lo..hi`.
#[inline]
pub fn tree_mid(lo: usize, hi: usize) -> usize {
    lo + (hi - lo) / 2
}

/// Scratch rows [`reduce_tree`] needs for `len` leaves: `⌈log₂ len⌉`
/// (each of `width` floats). Zero for a single leaf.
pub fn tree_levels(len: usize) -> usize {
    if len <= 1 {
        0
    } else {
        (len - 1).ilog2() as usize + 1
    }
}

/// Reduces `range` along the canonical tree into `out` (`width`
/// floats).
///
/// `leaf(i, row)` must **overwrite** `row` with leaf `i`'s value; it is
/// invoked exactly once per index, in ascending order (so a leaf may
/// stream from a sequentially-advancing source). `levels` is scratch of
/// at least `tree_levels(range.len()) · width` floats; its contents on
/// entry and exit are meaningless. Internal nodes combine as
/// `left += right`, elementwise, left-child-first — the one fixed
/// order everything in this module is built around.
pub fn reduce_tree<F: FnMut(usize, &mut [f32])>(
    range: Range<usize>,
    width: usize,
    levels: &mut [f32],
    leaf: &mut F,
    out: &mut [f32],
) {
    assert!(!range.is_empty(), "reduce_tree needs at least one leaf");
    assert_eq!(out.len(), width);
    assert!(
        levels.len() >= tree_levels(range.len()) * width,
        "levels scratch too small: {} < {}",
        levels.len(),
        tree_levels(range.len()) * width
    );
    reduce_node(range.start, range.end, width, levels, leaf, out);
}

fn reduce_node<F: FnMut(usize, &mut [f32])>(
    lo: usize,
    hi: usize,
    width: usize,
    levels: &mut [f32],
    leaf: &mut F,
    out: &mut [f32],
) {
    if hi - lo == 1 {
        leaf(lo, out);
        return;
    }
    let mid = tree_mid(lo, hi);
    reduce_node(lo, mid, width, levels, leaf, out);
    // The right child borrows one scratch row; deeper recursion gets
    // the rest. Depth is ⌈log₂(hi-lo)⌉, matching `tree_levels`.
    let (right_total, rest) = levels.split_at_mut(width);
    reduce_node(mid, hi, width, rest, leaf, right_total);
    for (acc, &r) in out.iter_mut().zip(right_total.iter()) {
        *acc += r;
    }
}

/// Splits `0..len` into at most `parts` contiguous ranges, **each an
/// exact node of the canonical tree**, by repeatedly splitting the
/// largest range (leftmost on ties) at its [`tree_mid`].
///
/// This is the partition parallel reducers must use: each part's
/// subtree total (via [`reduce_tree`]) plus a [`combine_tree_parts`]
/// join reproduces the whole-range reduction bit-for-bit. The
/// partition depends only on `(len, parts)` — like `chunk_ranges`, it
/// never sees worker scheduling. Returns fewer ranges when `len <
/// parts`; empty for `len == 0`.
pub fn tree_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let target = parts.clamp(1, len);
    let mut ranges = vec![0..len];
    while ranges.len() < target {
        let (idx, _) = ranges
            .iter()
            .enumerate()
            .max_by_key(|(i, r)| (r.len(), std::cmp::Reverse(*i)))
            .expect("non-empty by construction");
        let r = ranges[idx].clone();
        debug_assert!(r.len() >= 2, "target <= len keeps splittable ranges available");
        let mid = tree_mid(r.start, r.end);
        ranges.splice(idx..=idx, [r.start..mid, mid..r.end]);
    }
    ranges
}

/// Combines per-part subtree totals along the canonical tree.
///
/// `parts` holds one `width`-float row per range of `ranges` (a
/// [`tree_ranges`] partition, in order), each row the subtree total of
/// its range. On return `parts[..width]` is the total of the whole
/// span — produced by the exact additions the whole-span
/// [`reduce_tree`] would have performed above those subtrees, hence
/// bit-identical to it.
pub fn combine_tree_parts(ranges: &[Range<usize>], width: usize, parts: &mut [f32]) {
    assert_eq!(parts.len(), ranges.len() * width);
    if ranges.is_empty() {
        return;
    }
    combine_node(ranges, 0, ranges.len(), width, parts);
}

fn combine_node(
    ranges: &[Range<usize>],
    lo_i: usize,
    hi_i: usize,
    width: usize,
    parts: &mut [f32],
) {
    if hi_i - lo_i == 1 {
        return;
    }
    let lo = ranges[lo_i].start;
    let hi = ranges[hi_i - 1].end;
    let mid = tree_mid(lo, hi);
    let mid_i = lo_i
        + ranges[lo_i..hi_i]
            .iter()
            .position(|r| r.start == mid)
            .expect("ranges must be a canonical tree_ranges partition");
    combine_node(ranges, lo_i, mid_i, width, parts);
    combine_node(ranges, mid_i, hi_i, width, parts);
    // parts[lo_i] += parts[mid_i]: the internal-node addition.
    let (head, tail) = parts.split_at_mut(mid_i * width);
    let left = &mut head[lo_i * width..(lo_i + 1) * width];
    let right = &tail[..width];
    for (acc, &r) in left.iter_mut().zip(right.iter()) {
        *acc += r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Leaf values with wildly mixed magnitudes, so any change in
    /// summation order actually changes the float result — this is what
    /// makes the bit-identity assertions below meaningful.
    fn leaf_value(i: usize, width: usize, out: &mut [f32]) {
        for (w, slot) in out.iter_mut().enumerate() {
            let sign = if (i + w) % 3 == 0 { -1.0 } else { 1.0 };
            *slot = sign * (1.5f32).powi((i as i32 * 7 + w as i32) % 37 - 18);
        }
    }

    fn whole_tree(n: usize, width: usize) -> Vec<f32> {
        let mut out = vec![0.0; width];
        let mut levels = vec![0.0; tree_levels(n) * width];
        let mut order = Vec::new();
        reduce_tree(
            0..n,
            width,
            &mut levels,
            &mut |i, row| {
                order.push(i);
                leaf_value(i, width, row);
            },
            &mut out,
        );
        assert_eq!(order, (0..n).collect::<Vec<_>>(), "leaves ascend");
        out
    }

    #[test]
    fn tree_levels_matches_depth() {
        assert_eq!(tree_levels(0), 0);
        assert_eq!(tree_levels(1), 0);
        assert_eq!(tree_levels(2), 1);
        assert_eq!(tree_levels(3), 2);
        assert_eq!(tree_levels(4), 2);
        assert_eq!(tree_levels(5), 3);
        assert_eq!(tree_levels(1 << 10), 10);
        assert_eq!(tree_levels((1 << 10) + 1), 11);
    }

    #[test]
    fn tree_ranges_are_canonical_and_cover() {
        for len in [1usize, 2, 3, 7, 16, 33, 100] {
            for parts in [1usize, 2, 3, 4, 8, 200] {
                let ranges = tree_ranges(len, parts);
                assert_eq!(ranges.len(), parts.min(len));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
        assert!(tree_ranges(0, 4).is_empty());
        // The canonical split of 0..10 is at 5; of 0..5 at 2 — so four
        // parts of ten items are 0..2, 2..5, 5..7, 7..10.
        assert_eq!(tree_ranges(10, 4), vec![0..2, 2..5, 5..7, 7..10]);
    }

    /// The headline property: per-part reduction + tree combine is
    /// bit-identical to the whole-range reduction, for every part
    /// count — worker count can never change a bit.
    #[test]
    fn partitioned_reduction_is_bit_identical_for_any_part_count() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 37] {
            for width in [1usize, 3] {
                let reference = whole_tree(n, width);
                for parts in 1..=8 {
                    let ranges = tree_ranges(n, parts);
                    let mut partials = vec![0.0; ranges.len() * width];
                    let mut levels = vec![0.0; tree_levels(n) * width];
                    for (p, r) in ranges.iter().enumerate() {
                        reduce_tree(
                            r.clone(),
                            width,
                            &mut levels,
                            &mut |i, row| leaf_value(i, width, row),
                            &mut partials[p * width..(p + 1) * width],
                        );
                    }
                    combine_tree_parts(&ranges, width, &mut partials);
                    assert_eq!(
                        partials[..width].to_vec(),
                        reference,
                        "n={n} width={width} parts={parts}"
                    );
                }
            }
        }
    }

    /// The tree order genuinely differs from a left-to-right fold on
    /// these magnitude-skewed leaves — proving the bit-identity test
    /// above distinguishes orders at all.
    #[test]
    fn tree_order_differs_from_sequential_fold() {
        let n = 37;
        let tree = whole_tree(n, 1)[0];
        let mut fold = 0.0f32;
        for i in 0..n {
            let mut row = [0.0f32];
            leaf_value(i, 1, &mut row);
            fold += row[0];
        }
        assert_ne!(tree.to_bits(), fold.to_bits(), "orders must be distinguishable");
        // ... while agreeing to float tolerance, of course.
        assert!((tree - fold).abs() <= 1e-3 * fold.abs().max(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_range_panics() {
        let mut out = [0.0f32];
        reduce_tree(3..3, 1, &mut [], &mut |_, _| {}, &mut out);
    }
}
