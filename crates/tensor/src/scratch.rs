//! A role-keyed arena of reusable `f32` buffers.
//!
//! The training hot path used to allocate (and fault in) tens of
//! megabytes of short-lived buffers per step — `im2col` columns, column
//! deltas, per-sample gradient staging, batch-norm caches. [`Scratch`]
//! replaces those with grow-only buffers owned by the layer: the first
//! step pays the allocation, every later step reuses warm pages. The
//! steady-state-allocation tests in `caltrain-nn` pin this at zero.

use std::fmt;

/// Role-keyed, grow-only, reusable `f32` buffers.
///
/// Each role (a `&'static str` such as `"cols"`) names one buffer.
/// Buffers are resized to the requested length on every borrow but never
/// release capacity, so a steady-state caller performs no heap
/// allocation. Two access styles are provided:
///
/// * [`Scratch::slot`] / [`Scratch::zeroed`] — borrow a single buffer;
/// * [`Scratch::take`] / [`Scratch::put_back`] — move a buffer out when
///   several scratch buffers must be live at once (the borrow checker
///   cannot see that two roles are disjoint).
///
/// **Cloning a `Scratch` yields an empty arena.** Scratch contents are
/// derived data; snapshot clones (per-epoch model snapshots, hub
/// replicas) must not drag megabytes of stale workspace along.
#[derive(Default)]
pub struct Scratch {
    slots: Vec<(&'static str, Vec<f32>)>,
}

impl Scratch {
    /// An empty arena. Allocation happens lazily on first use per role.
    pub const fn new() -> Self {
        Scratch { slots: Vec::new() }
    }

    fn index(&mut self, role: &'static str) -> usize {
        match self.slots.iter().position(|(r, _)| *r == role) {
            Some(i) => i,
            None => {
                self.slots.push((role, Vec::new()));
                self.slots.len() - 1
            }
        }
    }

    /// Borrows the buffer for `role`, resized to exactly `len`.
    ///
    /// Contents are unspecified (stale data from previous uses); use
    /// [`Scratch::zeroed`] when the caller needs zeros.
    pub fn slot(&mut self, role: &'static str, len: usize) -> &mut [f32] {
        let i = self.index(role);
        let buf = &mut self.slots[i].1;
        buf.resize(len, 0.0);
        buf
    }

    /// Borrows the buffer for `role`, resized to `len` and zero-filled.
    pub fn zeroed(&mut self, role: &'static str, len: usize) -> &mut [f32] {
        let buf = self.slot(role, len);
        buf.fill(0.0);
        buf
    }

    /// Borrows the buffer for `role`, resized to `len` and filled with a
    /// copy of `src` (`src.len()` must equal `len`… it *is* `len`).
    ///
    /// This is the zero-allocation replacement for `src.to_vec()`.
    pub fn copy_in(&mut self, role: &'static str, src: &[f32]) -> &mut [f32] {
        let i = self.index(role);
        let buf = &mut self.slots[i].1;
        buf.clear();
        buf.extend_from_slice(src);
        buf
    }

    /// Moves the buffer for `role` out of the arena, resized to `len`
    /// (stale contents). Pair with [`Scratch::put_back`]; a buffer that
    /// is never returned costs one fresh allocation on the next `take`.
    pub fn take(&mut self, role: &'static str, len: usize) -> Vec<f32> {
        let i = self.index(role);
        let mut buf = std::mem::take(&mut self.slots[i].1);
        buf.resize(len, 0.0);
        buf
    }

    /// Like [`Scratch::take`] but zero-filled.
    pub fn take_zeroed(&mut self, role: &'static str, len: usize) -> Vec<f32> {
        let mut buf = self.take(role, len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer previously moved out with [`Scratch::take`].
    pub fn put_back(&mut self, role: &'static str, buf: Vec<f32>) {
        let i = self.index(role);
        self.slots[i].1 = buf;
    }

    /// Total `f32` capacity currently retained across all roles.
    pub fn retained_floats(&self) -> usize {
        self.slots.iter().map(|(_, b)| b.capacity()).sum()
    }

    /// Releases every buffer (used by the no-reuse reference path the
    /// `training_throughput` bench compares against).
    pub fn release(&mut self) {
        self.slots.clear();
        self.slots.shrink_to_fit();
    }
}

impl Clone for Scratch {
    /// Clones to an *empty* arena — scratch contents are derived data
    /// and snapshot clones must stay cheap.
    fn clone(&self) -> Self {
        Scratch::new()
    }
}

impl fmt::Debug for Scratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Scratch");
        for (role, buf) in &self.slots {
            s.field(role, &buf.capacity());
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_are_isolated() {
        let mut s = Scratch::new();
        s.zeroed("a", 4).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.zeroed("b", 2).copy_from_slice(&[9.0, 9.0]);
        assert_eq!(s.slot("a", 4), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.slot("b", 2), &[9.0, 9.0]);
    }

    #[test]
    fn capacity_is_grow_only() {
        let mut s = Scratch::new();
        s.slot("x", 1024);
        let cap = s.retained_floats();
        s.slot("x", 16); // shrink the length…
        assert_eq!(s.retained_floats(), cap, "…but never the capacity");
        s.slot("x", 1024);
        assert_eq!(s.retained_floats(), cap, "regrowth within capacity is free");
    }

    #[test]
    fn zeroed_clears_stale_contents() {
        let mut s = Scratch::new();
        s.slot("x", 8).fill(7.0);
        assert!(s.zeroed("x", 8).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_and_put_back_roundtrip() {
        let mut s = Scratch::new();
        let mut a = s.take("a", 8);
        let b = s.slot("b", 8); // second buffer live while `a` is out
        b.fill(2.0);
        a.fill(1.0);
        let cap = a.capacity();
        s.put_back("a", a);
        assert_eq!(s.take("a", 8).capacity(), cap, "take returns the same buffer");
    }

    #[test]
    fn clone_is_empty() {
        let mut s = Scratch::new();
        s.slot("big", 1 << 16);
        assert_eq!(s.clone().retained_floats(), 0);
    }

    #[test]
    fn release_frees_everything() {
        let mut s = Scratch::new();
        s.slot("x", 4096);
        s.release();
        assert_eq!(s.retained_floats(), 0);
    }
}
