//! Two single-precision GEMM kernels: a strict scalar kernel modelling
//! in-enclave compute and a cache-blocked kernel modelling the accelerated
//! out-of-enclave path.
//!
//! Both compute `C += A * B` for row-major `A: m×k`, `B: k×n`, `C: m×n`.
//! The *strict* kernel walks the arithmetic in a fixed, unfused order — the
//! shape generated when SGX enclave code is compiled without `-ffast-math`
//! or vector extensions (paper §VI-C speculates exactly this cause for the
//! measured 6–22 % overhead). The *blocked* kernel tiles for L1 residency
//! and exposes independent accumulator chains the compiler can vectorise.

/// Loop-blocking tile edge for [`gemm_blocked`] (elements, not bytes).
///
/// 64×64 f32 tiles are 16 KiB per operand — comfortably L1-resident on the
/// i7-6700 class hardware the paper evaluates on.
pub const BLOCK: usize = 64;

/// Strict scalar GEMM: `c += a * b`.
///
/// Fixed `i, j, p` loop order with a single scalar accumulator, mirroring
/// un-accelerated enclave code. Use [`gemm_blocked`] outside the enclave.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_strict(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Cache-blocked GEMM: `c += a * b`.
///
/// Tiles all three loops by [`BLOCK`] and uses an `i, p, j` inner order so
/// the innermost loop is a contiguous saxpy over a row of `B` — the access
/// pattern auto-vectorisers handle best.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_blocked(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let c_row = &mut c[i * n + j0..i * n + j1];
                    for p in p0..p1 {
                        // No zero-skip: every (i, j) accumulator must see the
                        // identical addition sequence as gemm_strict so the
                        // two kernel paths stay bit-identical (CalTrain's
                        // accuracy-parity claim, Figs. 3-4).
                        let a_ip = a[i * k + p];
                        let b_row = &b[p * n + j0..p * n + j1];
                        for (cv, bv) in c_row.iter_mut().zip(b_row) {
                            *cv += a_ip * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Cache-blocked GEMM with packed operand tiles: `c += a * b`.
///
/// Same tiling as [`gemm_blocked`], but each `B` tile is first copied into
/// a contiguous, stack-resident buffer (`BLOCK × BLOCK` f32 = 16 KiB, one
/// L1 way on the paper's i7-6700 class hardware). For the wide `B`
/// matrices the conv lowering produces (`n = out_h·out_w`), the unpacked
/// kernel strides `B` by `n` floats per `p` step and takes a TLB/cache
/// miss per row; the packed copy turns the whole inner loop into
/// stride-64 L1 hits and is what the auto-vectoriser keeps in registers.
///
/// The packing is a pure relayout: every `(i, j)` accumulator still sees
/// the identical `p`-ascending addition sequence as [`gemm_strict`], so
/// the strict/native bit-identity contract (CalTrain's accuracy-parity
/// claim, Figs. 3–4) is preserved — the `packed_matches_strict` test
/// pins it.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_packed(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    let mut b_tile = [0.0f32; BLOCK * BLOCK];
    for p0 in (0..k).step_by(BLOCK) {
        let p1 = (p0 + BLOCK).min(k);
        for j0 in (0..n).step_by(BLOCK) {
            let j1 = (j0 + BLOCK).min(n);
            let jb = j1 - j0;
            for p in p0..p1 {
                b_tile[(p - p0) * jb..(p - p0) * jb + jb]
                    .copy_from_slice(&b[p * n + j0..p * n + j1]);
            }
            for i0 in (0..m).step_by(BLOCK) {
                let i1 = (i0 + BLOCK).min(m);
                for i in i0..i1 {
                    let c_row = &mut c[i * n + j0..i * n + j1];
                    for p in p0..p1 {
                        // Identical addition order to gemm_strict /
                        // gemm_blocked: every (i, j) sees p ascending.
                        let a_ip = a[i * k + p];
                        let b_row = &b_tile[(p - p0) * jb..(p - p0) * jb + jb];
                        for (cv, bv) in c_row.iter_mut().zip(b_row) {
                            *cv += a_ip * bv;
                        }
                    }
                }
            }
        }
    }
}

/// GEMM with a transposed left operand: `c += aᵀ * b` where `a` is `k×m`.
///
/// Backpropagation through a convolution needs `Wᵀ · delta`; providing the
/// transposed variant avoids materialising `Wᵀ` every step.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_at_b(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be k*m (transposed)");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_pi * bv;
            }
        }
    }
}

/// GEMM with a transposed right operand: `c += a * bᵀ` where `b` is `n×k`.
///
/// Weight gradients need `delta · xᵀ`; this variant reads both operands
/// row-contiguously.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_a_bt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), n * k, "B must be n*k (transposed)");
    assert_eq!(c.len(), m * n, "C must be m*n");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// Strict scalar variant of [`gemm_at_b`]: `c += aᵀ * b`, `a` is `k×m`.
///
/// Fixed `i, j, p` order with one scalar accumulator per output — the
/// in-enclave shape of the backward pass. Produces bit-identical results
/// to [`gemm_at_b`] and [`gemm_at_b_packed`]: all three add the `p`
/// products onto the initial `c` value in ascending-`p` order.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_at_b_strict(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be k*m (transposed)");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc += a[p * m + i] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Packed-tile variant of [`gemm_at_b`]: `c += aᵀ * b`, `a` is `k×m`.
///
/// The backward input-delta GEMM has a *tall* left operand (`m =
/// c·k·k`), so reading `aᵀ` column-wise strides by `m` floats per step.
/// This kernel copies each `A` tile transposed — and each `B` tile
/// straight — into contiguous 16 KiB stack buffers, then sweeps an
/// L1-resident `c` row tile. Addition order per `(i, j)` is ascending
/// `p` exactly as in [`gemm_at_b_strict`], keeping the kernel paths
/// bit-identical.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_at_b_packed(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be k*m (transposed)");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    let mut a_tile = [0.0f32; BLOCK * BLOCK]; // i-major: a_tile[i'][p'] = a[p][i]
    let mut b_tile = [0.0f32; BLOCK * BLOCK]; // p-major: b_tile[p'][j'] = b[p][j]
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            let pb = p1 - p0;
            for p in p0..p1 {
                let a_row = &a[p * m + i0..p * m + i1];
                for (ii, &v) in a_row.iter().enumerate() {
                    a_tile[ii * pb + (p - p0)] = v;
                }
            }
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                let jb = j1 - j0;
                for p in p0..p1 {
                    b_tile[(p - p0) * jb..(p - p0) * jb + jb]
                        .copy_from_slice(&b[p * n + j0..p * n + j1]);
                }
                for i in i0..i1 {
                    let c_row = &mut c[i * n + j0..i * n + j1];
                    for p in 0..pb {
                        let a_ip = a_tile[(i - i0) * pb + p];
                        let b_row = &b_tile[p * jb..p * jb + jb];
                        for (cv, bv) in c_row.iter_mut().zip(b_row) {
                            *cv += a_ip * bv;
                        }
                    }
                }
            }
        }
    }
}
/// Cache-blocked variant of [`gemm_a_bt`]: `c += a * bᵀ`, `b` is `n×k`.
///
/// The weight-gradient GEMM has a *short* left operand (`m = filters`)
/// and a huge right one (`n = c·k·k` rows of length `out_h·out_w`), so
/// the plain kernel streams all of `B` from memory once per output row.
/// This variant sweeps `B` in row tiles that stay cache-resident across
/// the whole `i` loop. The dot product per `(i, j)` keeps a single
/// accumulator over ascending `p` — no `k`-splitting — so results are
/// bit-identical to [`gemm_a_bt`] (which doubles as the strict-mode
/// kernel for this shape).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_a_bt_blocked(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), n * k, "B must be n*k (transposed)");
    assert_eq!(c.len(), m * n, "C must be m*n");
    for j0 in (0..n).step_by(BLOCK) {
        let j1 = (j0 + BLOCK).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in j0..j1 {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                c[i * n + j] += acc;
            }
        }
    }
}

/// `B` size (in f32 elements) above which the native kernels switch
/// from streaming the operand in place to packing tiles.
///
/// Measured on conv-shaped workloads: packing is pure overhead while
/// `B` streams comfortably through L2 (the hardware prefetcher wins),
/// and pays off once the operand overflows cache/TLB reach. Both
/// kernels are bit-identical, so this constant affects speed only.
pub const PACK_MIN_FLOATS: usize = 1 << 20;

/// The native (out-of-enclave) `C += A·B` kernel, top of the dispatch
/// ladder: the explicit SIMD backend ([`crate::simd::gemm_simd`]) when
/// the host supports it and `CALTRAIN_SIMD` is not `0`, otherwise
/// cache-blocked scalar with packed `B` tiles once the operand exceeds
/// [`PACK_MIN_FLOATS`].
///
/// Bit-identical to [`gemm_strict`] on **every** rung — dispatch never
/// changes results. (The measurement-only FMA variant behind
/// `CALTRAIN_SIMD_FMA=1` is the sole, deliberate exception; it is off
/// by default and outside all tests.)
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_native(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if crate::simd::enabled() {
        if crate::simd::fma_enabled() {
            return crate::simd::gemm_fma(m, n, k, a, b, c);
        }
        return crate::simd::gemm_simd(m, n, k, a, b, c);
    }
    if k * n >= PACK_MIN_FLOATS {
        gemm_packed(m, n, k, a, b, c);
    } else {
        gemm_blocked(m, n, k, a, b, c);
    }
}

/// The native `C += Aᵀ·B` kernel: the SIMD backend when enabled,
/// otherwise the saxpy-form [`gemm_at_b`] while `C` stays
/// cache-resident and the packed-tile variant once it does not.
///
/// Bit-identical to [`gemm_at_b_strict`].
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_at_b_native(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if crate::simd::enabled() {
        return crate::simd::gemm_at_b_simd(m, n, k, a, b, c);
    }
    if m * n >= PACK_MIN_FLOATS / 2 {
        gemm_at_b_packed(m, n, k, a, b, c);
    } else {
        gemm_at_b(m, n, k, a, b, c);
    }
}

/// The native `C += A·Bᵀ` kernel: the SIMD backend when enabled (the
/// scalar dot-product form autovectorises poorly, so this is the
/// biggest beneficiary), otherwise [`gemm_a_bt_blocked`].
///
/// Bit-identical to [`gemm_a_bt`] (the strict-mode kernel for this
/// shape).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_a_bt_native(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if crate::simd::enabled() {
        return crate::simd::gemm_a_bt_simd(m, n, k, a, b, c);
    }
    gemm_a_bt_blocked(m, n, k, a, b, c);
}

/// The uniform signature every GEMM kernel here shares:
/// `(m, n, k, a, b, c)` computing `C += A·B` (or the documented
/// transposed variant).
pub type GemmKernel = fn(usize, usize, usize, &[f32], &[f32], &mut [f32]);

/// Runs `kernel` on one **row tile** of a `m×n×k` GEMM: rows
/// `rows.start..rows.end` of `A` and `C`, against the whole of `B`.
///
/// This is the shared-wide-GEMM work unit: several workers cooperate on
/// ONE `C += A·B` by each owning a disjoint row tile. Because every
/// kernel in this module computes `C[i][j]` from row `i` of `A` alone
/// — with the `p`-ascending addition order fixed per `(i, j)` — a row
/// tile performs *exactly* the arithmetic the full call performs for
/// those rows, so the tiling (and therefore the worker count) can never
/// change an output bit. The `row_tiles_bitwise_match_full` test pins
/// this for every kernel family.
///
/// `c_tile` is the contiguous `rows.len()·n` chunk of `C` for the tile.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the tile geometry.
pub fn gemm_row_tile(
    kernel: GemmKernel,
    rows: std::ops::Range<usize>,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c_tile: &mut [f32],
) {
    let m_tile = rows.len();
    assert!(rows.end * k <= a.len(), "row tile exceeds A");
    assert_eq!(c_tile.len(), m_tile * n, "C tile must be rows*n");
    kernel(m_tile, n, k, &a[rows.start * k..rows.end * k], b, c_tile);
}

/// Number of floating-point operations a `m×n×k` GEMM performs.
///
/// Used by the enclave cost model to convert kernel invocations into
/// simulated cycles.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn arb_matrix(len: usize, seed: u64) -> Vec<f32> {
        // Tiny deterministic LCG so kernel tests need no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn strict_matches_reference() {
        for &(m, n, k) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 13, 3)] {
            let a = arb_matrix(m * k, 1);
            let b = arb_matrix(k * n, 2);
            let mut c = vec![0.0; m * n];
            gemm_strict(m, n, k, &a, &b, &mut c);
            let r = reference(m, n, k, &a, &b);
            for (x, y) in c.iter().zip(&r) {
                assert!((x - y).abs() < 1e-5, "strict {x} vs ref {y}");
            }
        }
    }

    #[test]
    fn blocked_matches_strict() {
        // Sizes straddling the BLOCK boundary exercise partial tiles.
        for &(m, n, k) in &[(1, 1, 1), (63, 65, 64), (70, 9, 130), (128, 128, 16)] {
            let a = arb_matrix(m * k, 3);
            let b = arb_matrix(k * n, 4);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            gemm_strict(m, n, k, &a, &b, &mut c1);
            gemm_blocked(m, n, k, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-3, "blocked {y} vs strict {x}");
            }
        }
    }

    #[test]
    fn transposed_variants_match() {
        let (m, n, k) = (6, 10, 4);
        let a = arb_matrix(m * k, 5);
        let b = arb_matrix(k * n, 6);
        let r = reference(m, n, k, &a, &b);

        // Build aT (k×m) and bT (n×k) explicitly.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }

        let mut c1 = vec![0.0; m * n];
        gemm_at_b(m, n, k, &at, &b, &mut c1);
        let mut c2 = vec![0.0; m * n];
        gemm_a_bt(m, n, k, &a, &bt, &mut c2);
        for i in 0..m * n {
            assert!((c1[i] - r[i]).abs() < 1e-5);
            assert!((c2[i] - r[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn packed_matches_strict_bitwise() {
        // The packed kernel must not merely be close — it must follow the
        // exact addition order of gemm_strict, so the comparison is on
        // bits. Sizes straddle the BLOCK boundary on every axis.
        for &(m, n, k) in &[(1, 1, 1), (63, 65, 64), (70, 9, 130), (128, 128, 16), (5, 200, 7)] {
            let a = arb_matrix(m * k, 11);
            let b = arb_matrix(k * n, 12);
            let mut c1 = arb_matrix(m * n, 13); // non-zero initial C
            let mut c2 = c1.clone();
            gemm_strict(m, n, k, &a, &b, &mut c1);
            gemm_packed(m, n, k, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert_eq!(x.to_bits(), y.to_bits(), "packed must be bit-identical");
            }
        }
    }

    #[test]
    fn at_b_variants_bitwise_identical() {
        for &(m, n, k) in &[(1, 1, 1), (70, 65, 3), (130, 40, 64), (64, 64, 128)] {
            let at = arb_matrix(k * m, 21);
            let b = arb_matrix(k * n, 22);
            let mut c0 = arb_matrix(m * n, 23);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm_at_b(m, n, k, &at, &b, &mut c0);
            gemm_at_b_strict(m, n, k, &at, &b, &mut c1);
            gemm_at_b_packed(m, n, k, &at, &b, &mut c2);
            for i in 0..m * n {
                assert_eq!(c0[i].to_bits(), c1[i].to_bits(), "strict vs legacy at {i}");
                assert_eq!(c0[i].to_bits(), c2[i].to_bits(), "packed vs legacy at {i}");
            }
        }
    }

    #[test]
    fn a_bt_variants_bitwise_identical() {
        for &(m, n, k) in &[(1, 1, 1), (8, 130, 70), (3, 64, 200), (65, 65, 65)] {
            let a = arb_matrix(m * k, 31);
            let bt = arb_matrix(n * k, 32);
            let mut c0 = arb_matrix(m * n, 33);
            let mut c1 = c0.clone();
            gemm_a_bt(m, n, k, &a, &bt, &mut c0);
            gemm_a_bt_blocked(m, n, k, &a, &bt, &mut c1);
            for i in 0..m * n {
                assert_eq!(c0[i].to_bits(), c1[i].to_bits(), "blocked vs plain at {i}");
            }
        }
    }

    #[test]
    fn row_tiles_bitwise_match_full() {
        // The shared-wide-GEMM contract: computing C in disjoint row
        // tiles (any split) reproduces the full call bit for bit, on
        // every kernel family — tiling is how workers cooperate on one
        // wide GEMM without touching the addition order.
        let (m, n, k) = (13usize, 70usize, 40usize);
        let a = arb_matrix(m * k, 41);
        let b = arb_matrix(k * n, 42);
        for kernel in [
            gemm_strict as GemmKernel,
            gemm_blocked,
            gemm_packed,
            gemm_native,
            crate::simd::gemm_simd,
        ] {
            let mut full = vec![0.0; m * n];
            kernel(m, n, k, &a, &b, &mut full);
            for tiles in [1usize, 2, 3, 5, 13] {
                let mut c = vec![0.0; m * n];
                let per = m.div_ceil(tiles);
                let mut start = 0;
                while start < m {
                    let end = (start + per).min(m);
                    gemm_row_tile(
                        kernel,
                        start..end,
                        n,
                        k,
                        &a,
                        &b,
                        &mut c[start * n..end * n],
                    );
                    start = end;
                }
                for i in 0..m * n {
                    assert_eq!(
                        c[i].to_bits(),
                        full[i].to_bits(),
                        "tiles={tiles} elem={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0; 4];
        gemm_blocked(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}
