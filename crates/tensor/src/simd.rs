//! Explicit `core::arch` SIMD kernels (AVX2 on x86_64, NEON on
//! aarch64) for the GEMM family and the two flat epilogue sweeps —
//! selected at **runtime** and, crucially, **bitwise identical** to the
//! strict scalar reference.
//!
//! # The no-FMA bitwise contract
//!
//! Every kernel here vectorises across *independent output elements*:
//! lanes own distinct output columns `j` (or distinct filter rows for
//! the moment sweep), and each element's reduction remains the exact
//! ascending-`p` scalar addition chain of [`crate::gemm::gemm_strict`].
//! Products and sums are kept as **separate** mul and add intrinsics —
//! never a fused multiply-add — because IEEE 754 single-precision
//! lane arithmetic is then identical to the scalar instructions the
//! strict kernel executes. The result: `simd == strict` per element,
//! down to the bit, and the worker-count invariance of the repo holds
//! by construction (row tiles and plane fan-outs never change the
//! chain). The `simd_properties` proptests and the in-module tests pin
//! this on every variant, including remainder lanes (`n % 8 != 0`,
//! `n < 8`) and empty reductions (`k == 0`).
//!
//! An FMA variant ([`gemm_fma`]) exists for measurement only, behind
//! the off-by-default `CALTRAIN_SIMD_FMA=1` knob. It **breaks** the
//! bitwise contract (fused rounding) and is excluded from every test
//! and bench; nothing in the dispatch ladder reaches it unless the
//! knob is set.
//!
//! # Dispatch
//!
//! [`enabled`] gates the native dispatch in [`crate::gemm`]:
//! `CALTRAIN_SIMD=0` forces the blocked/packed scalar fallback, and on
//! hosts without AVX2 the fallback is automatic
//! ([`is_x86_feature_detected!`]; NEON is baseline on aarch64, so
//! detection is compile-time there). The public `*_simd` entry points
//! themselves fall back to the scalar kernels when the architecture
//! lacks SIMD support, so they are callable — and testable —
//! everywhere.

#![allow(unsafe_code)] // the one module where `core::arch` lives; crate root denies it.

use std::sync::OnceLock;

use crate::epilogue::Activation;

/// Whether this CPU has the SIMD backend's required features
/// (AVX2 on x86_64; always true on aarch64 — NEON is baseline).
pub fn supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Whether native dispatch routes through the SIMD backend: the CPU
/// supports it ([`supported`]) and `CALTRAIN_SIMD` is not `0`.
///
/// Cached on first use — the knob is read once per process, matching
/// how `CALTRAIN_WORKERS` behaves.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        supported() && std::env::var("CALTRAIN_SIMD").map_or(true, |v| v != "0")
    })
}

/// Whether the measurement-only FMA variant is switched on:
/// `CALTRAIN_SIMD_FMA=1` **and** the CPU has FMA3. Off by default;
/// breaks the bitwise contract, so tests and benches never set it.
pub fn fma_enabled() -> bool {
    static FMA: OnceLock<bool> = OnceLock::new();
    *FMA.get_or_init(|| {
        let asked = std::env::var("CALTRAIN_SIMD_FMA").map_or(false, |v| v == "1");
        #[cfg(target_arch = "x86_64")]
        {
            asked && is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            asked && false
        }
    })
}

/// SIMD `c += a * b` (row-major `A: m×k`, `B: k×n`, `C: m×n`) —
/// bitwise identical to [`crate::gemm::gemm_strict`].
///
/// Falls back to [`crate::gemm::gemm_blocked`] on architectures without
/// a SIMD backend, so the function is total.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_simd(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // A element for output row i: a[i*k + p] — row stride k, p stride 1.
        unsafe { x86::gemm_strided(m, n, k, a.as_ptr(), k, 1, b.as_ptr(), c.as_mut_ptr()) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        unsafe { neon::gemm_strided(m, n, k, a.as_ptr(), k, 1, b.as_ptr(), c.as_mut_ptr()) };
        return;
    }
    #[allow(unreachable_code)]
    crate::gemm::gemm_blocked(m, n, k, a, b, c)
}

/// SIMD `c += aᵀ * b` (`a` is `k×m`) — bitwise identical to
/// [`crate::gemm::gemm_at_b_strict`]. Scalar fallback as [`gemm_simd`].
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_at_b_simd(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be k*m (transposed)");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // A element for output row i: a[p*m + i] — row stride 1, p stride m.
        unsafe { x86::gemm_strided(m, n, k, a.as_ptr(), 1, m, b.as_ptr(), c.as_mut_ptr()) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        unsafe { neon::gemm_strided(m, n, k, a.as_ptr(), 1, m, b.as_ptr(), c.as_mut_ptr()) };
        return;
    }
    #[allow(unreachable_code)]
    crate::gemm::gemm_at_b(m, n, k, a, b, c)
}

/// SIMD `c += a * bᵀ` (`b` is `n×k`) — bitwise identical to
/// [`crate::gemm::gemm_a_bt`] (the strict-mode kernel for this shape):
/// lanes own distinct output columns `j`, each dot product keeps one
/// ascending-`p` accumulator started at `0.0` and added onto `c` at the
/// end, exactly like the scalar kernel.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_a_bt_simd(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), n * k, "B must be n*k (transposed)");
    assert_eq!(c.len(), m * n, "C must be m*n");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        unsafe { x86::gemm_a_bt(m, n, k, a.as_ptr(), b.as_ptr(), c.as_mut_ptr()) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        unsafe { neon::gemm_a_bt(m, n, k, a.as_ptr(), b.as_ptr(), c.as_mut_ptr()) };
        return;
    }
    #[allow(unreachable_code)]
    crate::gemm::gemm_a_bt_blocked(m, n, k, a, b, c)
}

/// Measurement-only FMA GEMM: `c += a * b` with fused multiply-adds.
///
/// **Not** bitwise identical to [`crate::gemm::gemm_strict`] — the
/// fused rounding changes low bits. Reached only when [`fma_enabled`]
/// (the `CALTRAIN_SIMD_FMA=1` knob) is set; stays out of every test and
/// bench. Falls back to [`gemm_simd`] where FMA is unavailable.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_fma(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        unsafe { x86::gemm_fma(m, n, k, a.as_ptr(), b.as_ptr(), c.as_mut_ptr()) };
        return;
    }
    #[allow(unreachable_code)]
    gemm_simd(m, n, k, a, b, c)
}

/// The per-plane scalar epilogue parameters — filter `f`'s slice of a
/// [`crate::epilogue::GemmEpilogue`], extracted so the SIMD plane sweep
/// can broadcast them. `z()` mirrors `GemmEpilogue::z` exactly.
#[derive(Clone, Copy)]
pub(crate) enum PlaneOp {
    /// `z = v + bias`.
    Bias(f32),
    /// `z = gamma·((v − mean)·inv_std) + beta` — canonical grouping.
    Norm {
        mean: f32,
        inv_std: f32,
        gamma: f32,
        beta: f32,
    },
}

impl PlaneOp {
    #[inline]
    fn z(self, v: f32) -> f32 {
        match self {
            PlaneOp::Bias(b) => v + b,
            PlaneOp::Norm { mean, inv_std, gamma, beta } => {
                let xhat = (v - mean) * inv_std;
                gamma * xhat + beta
            }
        }
    }
}

/// One plane of the fused scatter epilogue: `pre[j] = z(src[j])`,
/// `out[j] = act(z)`. Lane arithmetic matches the scalar loop in
/// [`crate::epilogue::scatter_wide_epilogue`] bit for bit.
pub(crate) fn plane_scatter(src: &[f32], op: PlaneOp, act: Activation, out: &mut [f32], pre: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    debug_assert_eq!(src.len(), pre.len());
    #[cfg(target_arch = "x86_64")]
    if supported() {
        unsafe { x86::plane_scatter(src, op, act, out, pre) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::plane_scatter(src, op, act, out, pre);
        return;
    }
    #[allow(unreachable_code)]
    for ((d, z_slot), &v) in out.iter_mut().zip(pre.iter_mut()).zip(src) {
        let z = op.z(v);
        *z_slot = z;
        *d = act.apply(z);
    }
}

/// One plane of the deferred batch-norm epilogue: reads the staged raw
/// value, writes `x̂`, overwrites the staging slot with `z` and writes
/// the activated output — the lane form of the loop in
/// [`crate::epilogue::apply_epilogue_planes`].
pub(crate) fn plane_apply_norm(
    mean: f32,
    inv_std: f32,
    gamma: f32,
    beta: f32,
    act: Activation,
    raw_to_z: &mut [f32],
    xhat: &mut [f32],
    out: &mut [f32],
) {
    debug_assert_eq!(raw_to_z.len(), xhat.len());
    debug_assert_eq!(raw_to_z.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if supported() {
        unsafe { x86::plane_apply_norm(mean, inv_std, gamma, beta, act, raw_to_z, xhat, out) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::plane_apply_norm(mean, inv_std, gamma, beta, act, raw_to_z, xhat, out);
        return;
    }
    #[allow(unreachable_code)]
    for j in 0..raw_to_z.len() {
        let xh = (raw_to_z[j] - mean) * inv_std;
        let z = gamma * xh + beta;
        xhat[j] = xh;
        raw_to_z[j] = z;
        out[j] = act.apply(z);
    }
}

/// One plane of the fused backward epilogue, pass one:
/// `out[j] = delta[j]·act.gradient(pre[j])`, then `·scale` when given —
/// the lane form of [`crate::epilogue::backward_delta_planes`].
pub(crate) fn plane_backward_delta(
    delta: &[f32],
    pre: &[f32],
    act: Activation,
    scale: Option<f32>,
    out: &mut [f32],
) {
    debug_assert_eq!(delta.len(), pre.len());
    debug_assert_eq!(delta.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if supported() {
        unsafe { x86::plane_backward_delta(delta, pre, act, scale, out) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::plane_backward_delta(delta, pre, act, scale, out);
        return;
    }
    #[allow(unreachable_code)]
    for j in 0..delta.len() {
        let mut d = delta[j] * act.gradient(pre[j]);
        if let Some(k) = scale {
            d *= k;
        }
        out[j] = d;
    }
}

/// One plane of the train-mode batch-norm backward transform:
/// `delta[j] = k·(m·delta[j] − sum_dy − xhat[j]·sum_dy_xhat)` — the
/// lane form of [`crate::epilogue::bn_backward_transform_planes`].
pub(crate) fn plane_bn_backward(
    k: f32,
    m: f32,
    sum_dy: f32,
    sum_dy_xhat: f32,
    xhat: &[f32],
    delta: &mut [f32],
) {
    debug_assert_eq!(xhat.len(), delta.len());
    #[cfg(target_arch = "x86_64")]
    if supported() {
        unsafe { x86::plane_bn_backward(k, m, sum_dy, sum_dy_xhat, xhat, delta) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::plane_bn_backward(k, m, sum_dy, sum_dy_xhat, xhat, delta);
        return;
    }
    #[allow(unreachable_code)]
    for j in 0..delta.len() {
        delta[j] = k * (m * delta[j] - sum_dy - xhat[j] * sum_dy_xhat);
    }
}

/// The shifted-moment row sweeps of
/// [`crate::epilogue::accumulate_wide_moments`], with the shifts `K`
/// already latched by the caller: for each row `r`,
/// `acc[3r+1] += Σ(v−K)` and `acc[3r+2] += Σ(v−K)²`, left to right.
///
/// Lanes own distinct **rows** (filters) in lockstep — the per-row
/// chain is untouched, so the accumulation is bitwise identical to the
/// scalar sweep at any tiling.
pub(crate) fn moment_rows(wide_rows: &[f32], cols: usize, acc: &mut [f32]) {
    debug_assert_eq!(acc.len() * cols, wide_rows.len() * crate::epilogue::MOMENT_ACC_STRIDE);
    #[cfg(target_arch = "x86_64")]
    if supported() {
        unsafe { x86::moment_rows(wide_rows, cols, acc) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::moment_rows(wide_rows, cols, acc);
        return;
    }
    #[allow(unreachable_code)]
    moment_rows_scalar(wide_rows, cols, acc, 0)
}

/// Scalar remainder of the moment sweep from row `row0` on — also the
/// whole fallback body. Identical per-row chain to the SIMD lanes.
fn moment_rows_scalar(wide_rows: &[f32], cols: usize, acc: &mut [f32], row0: usize) {
    const STRIDE: usize = crate::epilogue::MOMENT_ACC_STRIDE;
    for (r, row) in wide_rows.chunks_exact(cols).enumerate().skip(row0) {
        let base = STRIDE * r;
        let k = acc[base];
        let mut s1 = acc[base + 1];
        let mut s2 = acc[base + 2];
        for &v in row {
            let d = v - k;
            s1 += d;
            s2 += d * d;
        }
        acc[base + 1] = s1;
        acc[base + 2] = s2;
    }
}

/// Batched probe→block L2 distances over the dim-major SoA layout of
/// [`crate::distance`] — the accountability rerank kernel. Lanes own
/// distinct candidate columns `j`; each lane's squared-difference sum is
/// the exact ascending-`d` chain of
/// [`crate::distance::distances_to_block_strict`] (separate mul and
/// add, no FMA), finished with the hardware's correctly-rounded vector
/// square root — so the rung is bitwise identical to the scalar
/// reference, remainder lanes included.
///
/// Falls back to the strict scalar kernel on architectures without a
/// SIMD backend, so the function is total.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `dim`, `n`.
pub fn distances_simd(dim: usize, n: usize, probe: &[f32], block: &[f32], out: &mut [f32]) {
    assert_eq!(probe.len(), dim, "probe must have dim components");
    assert_eq!(block.len(), dim * n, "block must be dim*n");
    assert_eq!(out.len(), n, "out must hold n distances");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        unsafe { x86::distances(dim, n, probe.as_ptr(), block.as_ptr(), out.as_mut_ptr()) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        unsafe { neon::distances(dim, n, probe.as_ptr(), block.as_ptr(), out.as_mut_ptr()) };
        return;
    }
    #[allow(unreachable_code)]
    crate::distance::distances_to_block_strict(dim, n, probe, block, out)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2 bodies. Every `unsafe fn` here assumes the slice/pointer
    //! geometry its safe wrapper asserted and `avx2` present (checked
    //! by the wrapper via [`super::supported`]).

    use core::arch::x86_64::*;

    use super::PlaneOp;
    use crate::epilogue::Activation;

    /// Output-row band height of the GEMM microkernels.
    const MR: usize = 4;

    /// `c += a·b` with `A` addressed as `a[row·ars + p·aps]` — covers
    /// both the plain (`ars = k, aps = 1`) and the transposed-left
    /// (`ars = 1, aps = m`) kernels with one body.
    ///
    /// # Safety
    ///
    /// `ap`/`bp`/`cp` must point at `A`/`B`/`C` of the given geometry;
    /// caller must have verified AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_strided(
        m: usize,
        n: usize,
        k: usize,
        ap: *const f32,
        ars: usize,
        aps: usize,
        bp: *const f32,
        cp: *mut f32,
    ) {
        let mut i = 0;
        while i + MR <= m {
            row_band::<MR>(n, k, ap.add(i * ars), ars, aps, bp, cp.add(i * n));
            i += MR;
        }
        while i < m {
            row_band::<1>(n, k, ap.add(i * ars), ars, aps, bp, cp.add(i * n));
            i += 1;
        }
    }

    /// `R` output rows × all `n` columns: 16-wide, then 8-wide, then an
    /// exact scalar column tail. `ap` points at the band's first A row,
    /// `cp` at its first C row.
    #[target_feature(enable = "avx2")]
    unsafe fn row_band<const R: usize>(
        n: usize,
        k: usize,
        ap: *const f32,
        ars: usize,
        aps: usize,
        bp: *const f32,
        cp: *mut f32,
    ) {
        let mut j = 0;
        while j + 16 <= n {
            micro::<R, 2>(j, n, k, ap, ars, aps, bp, cp);
            j += 16;
        }
        while j + 8 <= n {
            micro::<R, 1>(j, n, k, ap, ars, aps, bp, cp);
            j += 8;
        }
        // Scalar column tail: the strict per-element chain verbatim.
        for r in 0..R {
            for jj in j..n {
                let mut acc = *cp.add(r * n + jj);
                for p in 0..k {
                    acc += *ap.add(r * ars + p * aps) * *bp.add(p * n + jj);
                }
                *cp.add(r * n + jj) = acc;
            }
        }
    }

    /// `R` rows × `8·V` columns. Lanes own distinct `j`; each lane's
    /// accumulator is loaded from `C`, advanced in ascending `p` with a
    /// **separate** mul then add (no FMA contraction — the intrinsics
    /// lower to plain `fmul`/`fadd`, which LLVM never fuses without
    /// fast-math), and stored back: the scalar chain, eight at a time.
    #[target_feature(enable = "avx2")]
    unsafe fn micro<const R: usize, const V: usize>(
        j: usize,
        n: usize,
        k: usize,
        ap: *const f32,
        ars: usize,
        aps: usize,
        bp: *const f32,
        cp: *mut f32,
    ) {
        let mut acc = [[_mm256_setzero_ps(); V]; R];
        for r in 0..R {
            for v in 0..V {
                acc[r][v] = _mm256_loadu_ps(cp.add(r * n + j + 8 * v));
            }
        }
        for p in 0..k {
            let mut vb = [_mm256_setzero_ps(); V];
            for v in 0..V {
                vb[v] = _mm256_loadu_ps(bp.add(p * n + j + 8 * v));
            }
            for r in 0..R {
                let va = _mm256_set1_ps(*ap.add(r * ars + p * aps));
                for v in 0..V {
                    acc[r][v] = _mm256_add_ps(acc[r][v], _mm256_mul_ps(va, vb[v]));
                }
            }
        }
        for r in 0..R {
            for v in 0..V {
                _mm256_storeu_ps(cp.add(r * n + j + 8 * v), acc[r][v]);
            }
        }
    }

    /// `c += a·bᵀ`: lanes own 8 distinct `j`, gathering the 8 strided
    /// `b[j·k + p]` lanes per step. Each lane keeps one zero-started
    /// ascending-`p` accumulator added onto `C` at the end — exactly
    /// the scalar dot-product chain of `gemm_a_bt`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_a_bt(m: usize, n: usize, k: usize, ap: *const f32, bp: *const f32, cp: *mut f32) {
        let mut i = 0;
        while i + MR <= m {
            abt_band::<MR>(n, k, ap.add(i * k), bp, cp.add(i * n));
            i += MR;
        }
        while i < m {
            abt_band::<1>(n, k, ap.add(i * k), bp, cp.add(i * n));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn abt_band<const R: usize>(n: usize, k: usize, ap: *const f32, bp: *const f32, cp: *mut f32) {
        let mut j = 0;
        if k <= i32::MAX as usize / 8 {
            // Lane l reads b[(j+l)·k + p]: constant stride k between
            // lanes, so one gather index vector serves every (j, p).
            let kk = k as i32;
            let vidx = _mm256_setr_epi32(0, kk, 2 * kk, 3 * kk, 4 * kk, 5 * kk, 6 * kk, 7 * kk);
            while j + 8 <= n {
                let mut acc = [_mm256_setzero_ps(); R];
                for p in 0..k {
                    let vb = _mm256_i32gather_ps::<4>(bp.add(j * k + p), vidx);
                    for r in 0..R {
                        let va = _mm256_set1_ps(*ap.add(r * k + p));
                        acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(va, vb));
                    }
                }
                for r in 0..R {
                    let cv = _mm256_loadu_ps(cp.add(r * n + j));
                    _mm256_storeu_ps(cp.add(r * n + j), _mm256_add_ps(cv, acc[r]));
                }
                j += 8;
            }
        }
        for r in 0..R {
            for jj in j..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += *ap.add(r * k + p) * *bp.add(jj * k + p);
                }
                *cp.add(r * n + jj) += acc;
            }
        }
    }

    /// The rerank distance sweep: 16 candidate columns per step (then
    /// 8, then an exact scalar tail). Each lane's accumulator starts at
    /// zero and advances in ascending `d` with separate mul+add;
    /// `_mm256_sqrt_ps` is IEEE correctly rounded, i.e. the same value
    /// `f32::sqrt` produces.
    #[target_feature(enable = "avx2")]
    pub unsafe fn distances(dim: usize, n: usize, pp: *const f32, bp: *const f32, op: *mut f32) {
        let mut j = 0;
        while j + 16 <= n {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for d in 0..dim {
                let pv = _mm256_set1_ps(*pp.add(d));
                let d0 = _mm256_sub_ps(_mm256_loadu_ps(bp.add(d * n + j)), pv);
                let d1 = _mm256_sub_ps(_mm256_loadu_ps(bp.add(d * n + j + 8)), pv);
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(d0, d0));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(d1, d1));
            }
            _mm256_storeu_ps(op.add(j), _mm256_sqrt_ps(acc0));
            _mm256_storeu_ps(op.add(j + 8), _mm256_sqrt_ps(acc1));
            j += 16;
        }
        while j + 8 <= n {
            let mut acc = _mm256_setzero_ps();
            for d in 0..dim {
                let pv = _mm256_set1_ps(*pp.add(d));
                let dv = _mm256_sub_ps(_mm256_loadu_ps(bp.add(d * n + j)), pv);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(dv, dv));
            }
            _mm256_storeu_ps(op.add(j), _mm256_sqrt_ps(acc));
            j += 8;
        }
        while j < n {
            let mut acc = 0.0f32;
            for d in 0..dim {
                let diff = *bp.add(d * n + j) - *pp.add(d);
                acc += diff * diff;
            }
            *op.add(j) = acc.sqrt();
            j += 1;
        }
    }

    /// The measurement-only FMA body of [`super::gemm_fma`]: same band
    /// structure as [`gemm_strided`] for the plain layout, fused
    /// multiply-adds in the lane loop. Not bit-exact.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_fma(m: usize, n: usize, k: usize, ap: *const f32, bp: *const f32, cp: *mut f32) {
        for i in 0..m {
            let arow = ap.add(i * k);
            let crow = cp.add(i * n);
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = _mm256_loadu_ps(crow.add(j));
                for p in 0..k {
                    let va = _mm256_set1_ps(*arow.add(p));
                    let vb = _mm256_loadu_ps(bp.add(p * n + j));
                    acc = _mm256_fmadd_ps(va, vb, acc);
                }
                _mm256_storeu_ps(crow.add(j), acc);
                j += 8;
            }
            for jj in j..n {
                let mut acc = *crow.add(jj);
                for p in 0..k {
                    acc += *arow.add(p) * *bp.add(p * n + jj);
                }
                *crow.add(jj) = acc;
            }
        }
    }

    /// The activation on a lane vector — compare-and-blend so the
    /// selected values are the *same* values the scalar branches pick
    /// (including `−0.0` → `+0.0` for ReLU and NaN fall-through).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn act_vec(act: Activation, z: __m256) -> __m256 {
        match act {
            Activation::Linear => z,
            Activation::Relu => {
                let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(z, _mm256_setzero_ps());
                _mm256_blendv_ps(_mm256_setzero_ps(), z, gt)
            }
            Activation::Leaky => {
                let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(z, _mm256_setzero_ps());
                _mm256_blendv_ps(_mm256_mul_ps(z, _mm256_set1_ps(0.1)), z, gt)
            }
        }
    }

    /// Lane form of `Activation::gradient`: 1.0 where `z > 0`, else the
    /// branch constant (0.0 / 0.1) — blends of the exact scalar
    /// constants.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn grad_vec(act: Activation, z: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        match act {
            Activation::Linear => one,
            Activation::Relu => {
                let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(z, _mm256_setzero_ps());
                _mm256_blendv_ps(_mm256_setzero_ps(), one, gt)
            }
            Activation::Leaky => {
                let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(z, _mm256_setzero_ps());
                _mm256_blendv_ps(_mm256_set1_ps(0.1), one, gt)
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn plane_scatter(src: &[f32], op: PlaneOp, act: Activation, out: &mut [f32], pre: &mut [f32]) {
        let len = src.len();
        let sp = src.as_ptr();
        let op_ = out.as_mut_ptr();
        let pp = pre.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= len {
            let v = _mm256_loadu_ps(sp.add(j));
            let z = match op {
                PlaneOp::Bias(b) => _mm256_add_ps(v, _mm256_set1_ps(b)),
                PlaneOp::Norm { mean, inv_std, gamma, beta } => {
                    // Canonical grouping: x̂ = (v−µ)·inv_std, z = γ·x̂+β.
                    let xhat = _mm256_mul_ps(_mm256_sub_ps(v, _mm256_set1_ps(mean)), _mm256_set1_ps(inv_std));
                    _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(gamma), xhat), _mm256_set1_ps(beta))
                }
            };
            _mm256_storeu_ps(pp.add(j), z);
            _mm256_storeu_ps(op_.add(j), act_vec(act, z));
            j += 8;
        }
        for jj in j..len {
            let z = op.z(*sp.add(jj));
            *pp.add(jj) = z;
            *op_.add(jj) = act.apply(z);
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn plane_apply_norm(
        mean: f32,
        inv_std: f32,
        gamma: f32,
        beta: f32,
        act: Activation,
        raw_to_z: &mut [f32],
        xhat: &mut [f32],
        out: &mut [f32],
    ) {
        let len = raw_to_z.len();
        let rp = raw_to_z.as_mut_ptr();
        let xp = xhat.as_mut_ptr();
        let op_ = out.as_mut_ptr();
        let (vm, vi, vg, vb) = (
            _mm256_set1_ps(mean),
            _mm256_set1_ps(inv_std),
            _mm256_set1_ps(gamma),
            _mm256_set1_ps(beta),
        );
        let mut j = 0;
        while j + 8 <= len {
            let v = _mm256_loadu_ps(rp.add(j));
            let xh = _mm256_mul_ps(_mm256_sub_ps(v, vm), vi);
            let z = _mm256_add_ps(_mm256_mul_ps(vg, xh), vb);
            _mm256_storeu_ps(xp.add(j), xh);
            _mm256_storeu_ps(rp.add(j), z);
            _mm256_storeu_ps(op_.add(j), act_vec(act, z));
            j += 8;
        }
        for jj in j..len {
            let xh = (*rp.add(jj) - mean) * inv_std;
            let z = gamma * xh + beta;
            *xp.add(jj) = xh;
            *rp.add(jj) = z;
            *op_.add(jj) = act.apply(z);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn plane_backward_delta(
        delta: &[f32],
        pre: &[f32],
        act: Activation,
        scale: Option<f32>,
        out: &mut [f32],
    ) {
        let len = delta.len();
        let dp = delta.as_ptr();
        let pp = pre.as_ptr();
        let op_ = out.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= len {
            let z = _mm256_loadu_ps(pp.add(j));
            let mut d = _mm256_mul_ps(_mm256_loadu_ps(dp.add(j)), grad_vec(act, z));
            if let Some(k) = scale {
                d = _mm256_mul_ps(d, _mm256_set1_ps(k));
            }
            _mm256_storeu_ps(op_.add(j), d);
            j += 8;
        }
        for jj in j..len {
            let mut d = *dp.add(jj) * act.gradient(*pp.add(jj));
            if let Some(k) = scale {
                d *= k;
            }
            *op_.add(jj) = d;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn plane_bn_backward(
        k: f32,
        m: f32,
        sum_dy: f32,
        sum_dy_xhat: f32,
        xhat: &[f32],
        delta: &mut [f32],
    ) {
        let len = delta.len();
        let xp = xhat.as_ptr();
        let dp = delta.as_mut_ptr();
        let (vk, vm, vs, vsx) = (
            _mm256_set1_ps(k),
            _mm256_set1_ps(m),
            _mm256_set1_ps(sum_dy),
            _mm256_set1_ps(sum_dy_xhat),
        );
        let mut j = 0;
        while j + 8 <= len {
            let d = _mm256_loadu_ps(dp.add(j));
            let x = _mm256_loadu_ps(xp.add(j));
            // k·(m·d − Σdy − x̂·Σdy·x̂) with the scalar's exact tree.
            let t = _mm256_sub_ps(_mm256_sub_ps(_mm256_mul_ps(vm, d), vs), _mm256_mul_ps(x, vsx));
            _mm256_storeu_ps(dp.add(j), _mm256_mul_ps(vk, t));
            j += 8;
        }
        for jj in j..len {
            *dp.add(jj) = k * (m * *dp.add(jj) - sum_dy - *xp.add(jj) * sum_dy_xhat);
        }
    }

    /// Eight filter rows in lockstep: lane l sweeps row `r+l`'s
    /// left-to-right shifted chain. Strided row loads via gather.
    #[target_feature(enable = "avx2")]
    pub unsafe fn moment_rows(wide_rows: &[f32], cols: usize, acc: &mut [f32]) {
        const STRIDE: usize = crate::epilogue::MOMENT_ACC_STRIDE;
        let nrows = wide_rows.len() / cols;
        let rp = wide_rows.as_ptr();
        let mut r = 0;
        if cols <= i32::MAX as usize / 8 {
            let cc = cols as i32;
            let vidx = _mm256_setr_epi32(0, cc, 2 * cc, 3 * cc, 4 * cc, 5 * cc, 6 * cc, 7 * cc);
            while r + 8 <= nrows {
                let mut ka = [0.0f32; 8];
                let mut s1a = [0.0f32; 8];
                let mut s2a = [0.0f32; 8];
                for l in 0..8 {
                    let base = STRIDE * (r + l);
                    ka[l] = acc[base];
                    s1a[l] = acc[base + 1];
                    s2a[l] = acc[base + 2];
                }
                let kv = _mm256_loadu_ps(ka.as_ptr());
                let mut s1 = _mm256_loadu_ps(s1a.as_ptr());
                let mut s2 = _mm256_loadu_ps(s2a.as_ptr());
                for j in 0..cols {
                    let v = _mm256_i32gather_ps::<4>(rp.add(r * cols + j), vidx);
                    let d = _mm256_sub_ps(v, kv);
                    s1 = _mm256_add_ps(s1, d);
                    s2 = _mm256_add_ps(s2, _mm256_mul_ps(d, d));
                }
                _mm256_storeu_ps(s1a.as_mut_ptr(), s1);
                _mm256_storeu_ps(s2a.as_mut_ptr(), s2);
                for l in 0..8 {
                    let base = STRIDE * (r + l);
                    acc[base + 1] = s1a[l];
                    acc[base + 2] = s2a[l];
                }
                r += 8;
            }
        }
        super::moment_rows_scalar(wide_rows, cols, acc, r);
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON bodies — 4-lane analogues of the AVX2 module. NEON is
    //! baseline on aarch64, so no runtime detection is needed; the
    //! same no-FMA discipline applies (`vmulq`+`vaddq`, never `vfmaq`).

    #![allow(unused_unsafe)]

    use core::arch::aarch64::*;

    use super::PlaneOp;
    use crate::epilogue::Activation;

    const MR: usize = 4;

    #[inline]
    unsafe fn gather4(p: *const f32, stride: usize) -> float32x4_t {
        let lanes = [*p, *p.add(stride), *p.add(2 * stride), *p.add(3 * stride)];
        vld1q_f32(lanes.as_ptr())
    }

    pub unsafe fn gemm_strided(
        m: usize,
        n: usize,
        k: usize,
        ap: *const f32,
        ars: usize,
        aps: usize,
        bp: *const f32,
        cp: *mut f32,
    ) {
        let mut i = 0;
        while i + MR <= m {
            row_band::<MR>(n, k, ap.add(i * ars), ars, aps, bp, cp.add(i * n));
            i += MR;
        }
        while i < m {
            row_band::<1>(n, k, ap.add(i * ars), ars, aps, bp, cp.add(i * n));
            i += 1;
        }
    }

    unsafe fn row_band<const R: usize>(
        n: usize,
        k: usize,
        ap: *const f32,
        ars: usize,
        aps: usize,
        bp: *const f32,
        cp: *mut f32,
    ) {
        let mut j = 0;
        while j + 8 <= n {
            micro::<R, 2>(j, n, k, ap, ars, aps, bp, cp);
            j += 8;
        }
        while j + 4 <= n {
            micro::<R, 1>(j, n, k, ap, ars, aps, bp, cp);
            j += 4;
        }
        for r in 0..R {
            for jj in j..n {
                let mut acc = *cp.add(r * n + jj);
                for p in 0..k {
                    acc += *ap.add(r * ars + p * aps) * *bp.add(p * n + jj);
                }
                *cp.add(r * n + jj) = acc;
            }
        }
    }

    unsafe fn micro<const R: usize, const V: usize>(
        j: usize,
        n: usize,
        k: usize,
        ap: *const f32,
        ars: usize,
        aps: usize,
        bp: *const f32,
        cp: *mut f32,
    ) {
        let mut acc = [[vdupq_n_f32(0.0); V]; R];
        for r in 0..R {
            for v in 0..V {
                acc[r][v] = vld1q_f32(cp.add(r * n + j + 4 * v));
            }
        }
        for p in 0..k {
            let mut vb = [vdupq_n_f32(0.0); V];
            for v in 0..V {
                vb[v] = vld1q_f32(bp.add(p * n + j + 4 * v));
            }
            for r in 0..R {
                let va = vdupq_n_f32(*ap.add(r * ars + p * aps));
                for v in 0..V {
                    acc[r][v] = vaddq_f32(acc[r][v], vmulq_f32(va, vb[v]));
                }
            }
        }
        for r in 0..R {
            for v in 0..V {
                vst1q_f32(cp.add(r * n + j + 4 * v), acc[r][v]);
            }
        }
    }

    pub unsafe fn gemm_a_bt(m: usize, n: usize, k: usize, ap: *const f32, bp: *const f32, cp: *mut f32) {
        let mut i = 0;
        while i + MR <= m {
            abt_band::<MR>(n, k, ap.add(i * k), bp, cp.add(i * n));
            i += MR;
        }
        while i < m {
            abt_band::<1>(n, k, ap.add(i * k), bp, cp.add(i * n));
            i += 1;
        }
    }

    unsafe fn abt_band<const R: usize>(n: usize, k: usize, ap: *const f32, bp: *const f32, cp: *mut f32) {
        let mut j = 0;
        while j + 4 <= n {
            let mut acc = [vdupq_n_f32(0.0); R];
            for p in 0..k {
                let vb = gather4(bp.add(j * k + p), k);
                for r in 0..R {
                    let va = vdupq_n_f32(*ap.add(r * k + p));
                    acc[r] = vaddq_f32(acc[r], vmulq_f32(va, vb));
                }
            }
            for r in 0..R {
                let cv = vld1q_f32(cp.add(r * n + j));
                vst1q_f32(cp.add(r * n + j), vaddq_f32(cv, acc[r]));
            }
            j += 4;
        }
        for r in 0..R {
            for jj in j..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += *ap.add(r * k + p) * *bp.add(jj * k + p);
                }
                *cp.add(r * n + jj) += acc;
            }
        }
    }

    /// NEON rerank distance sweep — 4-lane analogue of the AVX2 body.
    /// `vsqrtq_f32` is the A64 FSQRT vector instruction, IEEE correctly
    /// rounded like `f32::sqrt`.
    pub unsafe fn distances(dim: usize, n: usize, pp: *const f32, bp: *const f32, op: *mut f32) {
        let mut j = 0;
        while j + 4 <= n {
            let mut acc = vdupq_n_f32(0.0);
            for d in 0..dim {
                let pv = vdupq_n_f32(*pp.add(d));
                let dv = vsubq_f32(vld1q_f32(bp.add(d * n + j)), pv);
                acc = vaddq_f32(acc, vmulq_f32(dv, dv));
            }
            vst1q_f32(op.add(j), vsqrtq_f32(acc));
            j += 4;
        }
        while j < n {
            let mut acc = 0.0f32;
            for d in 0..dim {
                let diff = *bp.add(d * n + j) - *pp.add(d);
                acc += diff * diff;
            }
            *op.add(j) = acc.sqrt();
            j += 1;
        }
    }

    #[inline]
    unsafe fn act_vec(act: Activation, z: float32x4_t) -> float32x4_t {
        match act {
            Activation::Linear => z,
            Activation::Relu => {
                let gt = vcgtq_f32(z, vdupq_n_f32(0.0));
                vbslq_f32(gt, z, vdupq_n_f32(0.0))
            }
            Activation::Leaky => {
                let gt = vcgtq_f32(z, vdupq_n_f32(0.0));
                vbslq_f32(gt, z, vmulq_f32(z, vdupq_n_f32(0.1)))
            }
        }
    }

    #[inline]
    unsafe fn grad_vec(act: Activation, z: float32x4_t) -> float32x4_t {
        let one = vdupq_n_f32(1.0);
        match act {
            Activation::Linear => one,
            Activation::Relu => {
                let gt = vcgtq_f32(z, vdupq_n_f32(0.0));
                vbslq_f32(gt, one, vdupq_n_f32(0.0))
            }
            Activation::Leaky => {
                let gt = vcgtq_f32(z, vdupq_n_f32(0.0));
                vbslq_f32(gt, one, vdupq_n_f32(0.1))
            }
        }
    }

    pub fn plane_scatter(src: &[f32], op: PlaneOp, act: Activation, out: &mut [f32], pre: &mut [f32]) {
        unsafe {
            let len = src.len();
            let sp = src.as_ptr();
            let op_ = out.as_mut_ptr();
            let pp = pre.as_mut_ptr();
            let mut j = 0;
            while j + 4 <= len {
                let v = vld1q_f32(sp.add(j));
                let z = match op {
                    PlaneOp::Bias(b) => vaddq_f32(v, vdupq_n_f32(b)),
                    PlaneOp::Norm { mean, inv_std, gamma, beta } => {
                        let xhat = vmulq_f32(vsubq_f32(v, vdupq_n_f32(mean)), vdupq_n_f32(inv_std));
                        vaddq_f32(vmulq_f32(vdupq_n_f32(gamma), xhat), vdupq_n_f32(beta))
                    }
                };
                vst1q_f32(pp.add(j), z);
                vst1q_f32(op_.add(j), act_vec(act, z));
                j += 4;
            }
            for jj in j..len {
                let z = op.z(*sp.add(jj));
                *pp.add(jj) = z;
                *op_.add(jj) = act.apply(z);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn plane_apply_norm(
        mean: f32,
        inv_std: f32,
        gamma: f32,
        beta: f32,
        act: Activation,
        raw_to_z: &mut [f32],
        xhat: &mut [f32],
        out: &mut [f32],
    ) {
        unsafe {
            let len = raw_to_z.len();
            let rp = raw_to_z.as_mut_ptr();
            let xp = xhat.as_mut_ptr();
            let op_ = out.as_mut_ptr();
            let (vm, vi, vg, vb) = (
                vdupq_n_f32(mean),
                vdupq_n_f32(inv_std),
                vdupq_n_f32(gamma),
                vdupq_n_f32(beta),
            );
            let mut j = 0;
            while j + 4 <= len {
                let v = vld1q_f32(rp.add(j));
                let xh = vmulq_f32(vsubq_f32(v, vm), vi);
                let z = vaddq_f32(vmulq_f32(vg, xh), vb);
                vst1q_f32(xp.add(j), xh);
                vst1q_f32(rp.add(j), z);
                vst1q_f32(op_.add(j), act_vec(act, z));
                j += 4;
            }
            for jj in j..len {
                let xh = (*rp.add(jj) - mean) * inv_std;
                let z = gamma * xh + beta;
                *xp.add(jj) = xh;
                *rp.add(jj) = z;
                *op_.add(jj) = act.apply(z);
            }
        }
    }

    pub fn plane_backward_delta(
        delta: &[f32],
        pre: &[f32],
        act: Activation,
        scale: Option<f32>,
        out: &mut [f32],
    ) {
        unsafe {
            let len = delta.len();
            let dp = delta.as_ptr();
            let pp = pre.as_ptr();
            let op_ = out.as_mut_ptr();
            let mut j = 0;
            while j + 4 <= len {
                let z = vld1q_f32(pp.add(j));
                let mut d = vmulq_f32(vld1q_f32(dp.add(j)), grad_vec(act, z));
                if let Some(k) = scale {
                    d = vmulq_f32(d, vdupq_n_f32(k));
                }
                vst1q_f32(op_.add(j), d);
                j += 4;
            }
            for jj in j..len {
                let mut d = *dp.add(jj) * act.gradient(*pp.add(jj));
                if let Some(k) = scale {
                    d *= k;
                }
                *op_.add(jj) = d;
            }
        }
    }

    pub fn plane_bn_backward(
        k: f32,
        m: f32,
        sum_dy: f32,
        sum_dy_xhat: f32,
        xhat: &[f32],
        delta: &mut [f32],
    ) {
        unsafe {
            let len = delta.len();
            let xp = xhat.as_ptr();
            let dp = delta.as_mut_ptr();
            let (vk, vm, vs, vsx) = (
                vdupq_n_f32(k),
                vdupq_n_f32(m),
                vdupq_n_f32(sum_dy),
                vdupq_n_f32(sum_dy_xhat),
            );
            let mut j = 0;
            while j + 4 <= len {
                let d = vld1q_f32(dp.add(j));
                let x = vld1q_f32(xp.add(j));
                let t = vsubq_f32(vsubq_f32(vmulq_f32(vm, d), vs), vmulq_f32(x, vsx));
                vst1q_f32(dp.add(j), vmulq_f32(vk, t));
                j += 4;
            }
            for jj in j..len {
                *dp.add(jj) = k * (m * *dp.add(jj) - sum_dy - *xp.add(jj) * sum_dy_xhat);
            }
        }
    }

    pub fn moment_rows(wide_rows: &[f32], cols: usize, acc: &mut [f32]) {
        const STRIDE: usize = crate::epilogue::MOMENT_ACC_STRIDE;
        unsafe {
            let nrows = wide_rows.len() / cols;
            let rp = wide_rows.as_ptr();
            let mut r = 0;
            while r + 4 <= nrows {
                let mut ka = [0.0f32; 4];
                let mut s1a = [0.0f32; 4];
                let mut s2a = [0.0f32; 4];
                for l in 0..4 {
                    let base = STRIDE * (r + l);
                    ka[l] = acc[base];
                    s1a[l] = acc[base + 1];
                    s2a[l] = acc[base + 2];
                }
                let kv = vld1q_f32(ka.as_ptr());
                let mut s1 = vld1q_f32(s1a.as_ptr());
                let mut s2 = vld1q_f32(s2a.as_ptr());
                for j in 0..cols {
                    let v = gather4(rp.add(r * cols + j), cols);
                    let d = vsubq_f32(v, kv);
                    s1 = vaddq_f32(s1, d);
                    s2 = vaddq_f32(s2, vmulq_f32(d, d));
                }
                vst1q_f32(s1a.as_mut_ptr(), s1);
                vst1q_f32(s2a.as_mut_ptr(), s2);
                for l in 0..4 {
                    let base = STRIDE * (r + l);
                    acc[base + 1] = s1a[l];
                    acc[base + 2] = s2a[l];
                }
                r += 4;
            }
            super::moment_rows_scalar(wide_rows, cols, acc, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_a_bt, gemm_at_b_strict, gemm_strict};

    fn arb(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn simd_gemm_matches_strict_bitwise() {
        // Shapes straddle every lane boundary: n < 8, n % 8 != 0,
        // n % 16 != 0, k == 0, m % MR != 0.
        for &(m, n, k) in &[
            (1, 1, 1),
            (4, 16, 8),
            (5, 7, 3),
            (3, 8, 0),
            (9, 33, 17),
            (2, 100, 27),
            (13, 23, 64),
        ] {
            let a = arb(m * k, 101);
            let b = arb(k * n, 102);
            let mut c1 = arb(m * n, 103);
            let mut c2 = c1.clone();
            gemm_strict(m, n, k, &a, &b, &mut c1);
            gemm_simd(m, n, k, &a, &b, &mut c2);
            for i in 0..m * n {
                assert_eq!(c1[i].to_bits(), c2[i].to_bits(), "{m}x{n}x{k} elem {i}");
            }
        }
    }

    #[test]
    fn simd_at_b_matches_strict_bitwise() {
        for &(m, n, k) in &[(1, 1, 1), (6, 20, 5), (5, 7, 3), (3, 9, 0), (12, 31, 11)] {
            let at = arb(k * m, 111);
            let b = arb(k * n, 112);
            let mut c1 = arb(m * n, 113);
            let mut c2 = c1.clone();
            gemm_at_b_strict(m, n, k, &at, &b, &mut c1);
            gemm_at_b_simd(m, n, k, &at, &b, &mut c2);
            for i in 0..m * n {
                assert_eq!(c1[i].to_bits(), c2[i].to_bits(), "{m}x{n}x{k} elem {i}");
            }
        }
    }

    #[test]
    fn simd_a_bt_matches_plain_bitwise() {
        for &(m, n, k) in &[(1, 1, 1), (6, 20, 5), (5, 7, 3), (3, 9, 0), (9, 31, 24)] {
            let a = arb(m * k, 121);
            let bt = arb(n * k, 122);
            let mut c1 = arb(m * n, 123);
            let mut c2 = c1.clone();
            gemm_a_bt(m, n, k, &a, &bt, &mut c1);
            gemm_a_bt_simd(m, n, k, &a, &bt, &mut c2);
            for i in 0..m * n {
                assert_eq!(c1[i].to_bits(), c2[i].to_bits(), "{m}x{n}x{k} elem {i}");
            }
        }
    }

    #[test]
    fn relu_negative_zero_matches_scalar() {
        // ReLU maps −0.0 to +0.0 on the scalar branch (the `else`
        // constant); the blend must pick the same +0.0, not pass −0.0.
        let src = [-0.0f32, 0.0, -1.0, 2.0, -0.0, 3.0, -4.0, 0.5, -0.0];
        let mut out = [9.0f32; 9];
        let mut pre = [9.0f32; 9];
        plane_scatter(&src, PlaneOp::Bias(0.0), Activation::Relu, &mut out, &mut pre);
        for (i, &v) in src.iter().enumerate() {
            let z = v + 0.0;
            assert_eq!(out[i].to_bits(), Activation::Relu.apply(z).to_bits(), "elem {i}");
        }
    }

    #[test]
    fn detection_is_consistent() {
        // enabled() implies supported(); fma stays off unless asked.
        if enabled() {
            assert!(supported());
        }
        if std::env::var("CALTRAIN_SIMD_FMA").as_deref() != Ok("1") {
            assert!(!fma_enabled());
        }
    }
}
