//! The labelled-image dataset type with per-instance provenance.

use caltrain_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Identifies a training participant (the `S` of the linkage structure
/// Ω = [F, Y, S, H], paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParticipantId(pub u32);

impl std::fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "participant-{}", self.0)
    }
}

/// Ground-truth status of a training instance — the oracle Experiment IV
/// is scored against. Invisible to the training pipeline itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelStatus {
    /// Correctly labelled, benign instance.
    Clean,
    /// Honest-but-wrong label (the VGG-Face class-0 phenomenon, §VI-D).
    Mislabeled {
        /// The class the instance actually depicts.
        actual: usize,
    },
    /// Deliberately poisoned (trojan-trigger-stamped) instance.
    Poisoned,
}

/// A labelled image set: images `[n, c, h, w]`, one label, provenance tag
/// and ground-truth status per image.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    sources: Vec<ParticipantId>,
    statuses: Vec<LabelStatus>,
}

impl Dataset {
    /// Assembles a dataset; every instance starts `Clean` and owned by
    /// participant 0 (use [`Dataset::set_source`] / shard helpers to
    /// distribute).
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank-4 or label count ≠ batch size.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(images.dims().len(), 4, "expected [n, c, h, w]");
        assert_eq!(images.dims()[0], labels.len(), "one label per image");
        let n = labels.len();
        Dataset {
            images,
            labels,
            sources: vec![ParticipantId(0); n],
            statuses: vec![LabelStatus::Clean; n],
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The image tensor `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per image.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Provenance tags, one per image.
    pub fn sources(&self) -> &[ParticipantId] {
        &self.sources
    }

    /// Ground-truth statuses, one per image.
    pub fn statuses(&self) -> &[LabelStatus] {
        &self.statuses
    }

    /// Per-sample shape `[c, h, w]`.
    pub fn sample_dims(&self) -> [usize; 3] {
        let d = self.images.dims();
        [d[1], d[2], d[3]]
    }

    /// A copy of image `index` as `[c, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn image(&self, index: usize) -> Tensor {
        let [c, h, w] = self.sample_dims();
        let stride = c * h * w;
        Tensor::from_vec(
            self.images.as_slice()[index * stride..(index + 1) * stride].to_vec(),
            &[c, h, w],
        )
        .expect("slice matches shape")
    }

    /// Raw bytes of image `index` (little-endian f32s) — the unit the
    /// linkage hash `H` commits to.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn image_bytes(&self, index: usize) -> Vec<u8> {
        let [c, h, w] = self.sample_dims();
        let stride = c * h * w;
        self.images.as_slice()[index * stride..(index + 1) * stride]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect()
    }

    /// Overwrites the provenance tag of every instance.
    pub fn set_source(&mut self, source: ParticipantId) {
        self.sources.fill(source);
    }

    /// Sets the status of instance `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set_status(&mut self, index: usize, status: LabelStatus) {
        self.statuses[index] = status;
    }

    /// Relabels instance `index` (used by mislabeling/poisoning builders).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set_label(&mut self, index: usize, label: usize) {
        self.labels[index] = label;
    }

    /// Replaces image `index` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `index >= len()`.
    pub fn set_image(&mut self, index: usize, image: &Tensor) {
        let [c, h, w] = self.sample_dims();
        assert_eq!(image.dims(), &[c, h, w], "image shape mismatch");
        let stride = c * h * w;
        self.images.as_mut_slice()[index * stride..(index + 1) * stride]
            .copy_from_slice(image.as_slice());
    }

    /// Extracts the sub-dataset at `indices` (provenance preserved).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "empty subset");
        let [c, h, w] = self.sample_dims();
        let stride = c * h * w;
        let mut data = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        let mut sources = Vec::with_capacity(indices.len());
        let mut statuses = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images.as_slice()[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
            sources.push(self.sources[i]);
            statuses.push(self.statuses[i]);
        }
        Dataset {
            images: Tensor::from_vec(data, &[indices.len(), c, h, w])
                .expect("constructed consistently"),
            labels,
            sources,
            statuses,
        }
    }

    /// Concatenates two datasets of identical sample shape.
    ///
    /// # Panics
    ///
    /// Panics if the sample shapes differ.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.sample_dims(), other.sample_dims(), "sample shape mismatch");
        let [c, h, w] = self.sample_dims();
        let mut data = self.images.as_slice().to_vec();
        data.extend_from_slice(other.images.as_slice());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let mut sources = self.sources.clone();
        sources.extend_from_slice(&other.sources);
        let mut statuses = self.statuses.clone();
        statuses.extend_from_slice(&other.statuses);
        Dataset {
            images: Tensor::from_vec(data, &[labels.len(), c, h, w])
                .expect("constructed consistently"),
            labels,
            sources,
            statuses,
        }
    }

    /// A shuffled copy (images, labels and provenance permuted together).
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        self.subset(&indices)
    }

    /// Iterator over `(start, end)` mini-batch bounds of size
    /// `batch_size` (final short batch included).
    pub fn batch_bounds(&self, batch_size: usize) -> Vec<(usize, usize)> {
        let batch_size = batch_size.max(1);
        let mut bounds = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            bounds.push((start, end));
            start = end;
        }
        bounds
    }

    /// Indices of all instances labelled `class`.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i] == class).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> Dataset {
        let images = Tensor::from_fn(&[4, 1, 2, 2], |i| i as f32);
        Dataset::new(images, vec![0, 1, 0, 1])
    }

    #[test]
    fn accessors() {
        let ds = small();
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.sample_dims(), [1, 2, 2]);
        assert_eq!(ds.image(1).as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(ds.indices_of_class(1), vec![1, 3]);
    }

    #[test]
    fn image_bytes_roundtrip() {
        let ds = small();
        let bytes = ds.image_bytes(2);
        assert_eq!(bytes.len(), 16);
        let v = f32::from_le_bytes(bytes[0..4].try_into().unwrap());
        assert_eq!(v, 8.0);
    }

    #[test]
    fn subset_preserves_provenance() {
        let mut ds = small();
        ds.set_source(ParticipantId(3));
        ds.set_status(2, LabelStatus::Poisoned);
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.sources()[0], ParticipantId(3));
        assert_eq!(sub.statuses()[0], LabelStatus::Poisoned);
        assert_eq!(sub.statuses()[1], LabelStatus::Clean);
        assert_eq!(sub.image(0).as_slice(), ds.image(2).as_slice());
    }

    #[test]
    fn concat_appends() {
        let a = small();
        let b = small();
        let c = a.concat(&b);
        assert_eq!(c.len(), 8);
        assert_eq!(c.image(5).as_slice(), b.image(1).as_slice());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let ds = small();
        let mut rng = StdRng::seed_from_u64(1);
        let sh = ds.shuffled(&mut rng);
        assert_eq!(sh.len(), ds.len());
        let mut sums: Vec<f32> = (0..4).map(|i| sh.image(i).sum()).collect();
        let mut orig: Vec<f32> = (0..4).map(|i| ds.image(i).sum()).collect();
        sums.sort_by(f32::total_cmp);
        orig.sort_by(f32::total_cmp);
        assert_eq!(sums, orig);
    }

    #[test]
    fn batch_bounds_cover_everything() {
        let ds = small();
        assert_eq!(ds.batch_bounds(3), vec![(0, 3), (3, 4)]);
        assert_eq!(ds.batch_bounds(4), vec![(0, 4)]);
        assert_eq!(ds.batch_bounds(100), vec![(0, 4)]);
    }

    #[test]
    fn mutation_helpers() {
        let mut ds = small();
        ds.set_label(0, 7);
        assert_eq!(ds.labels()[0], 7);
        let img = Tensor::full(&[1, 2, 2], 9.0);
        ds.set_image(3, &img);
        assert_eq!(ds.image(3).as_slice(), &[9.0; 4]);
    }
}
