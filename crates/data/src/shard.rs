//! Distributing a dataset across training participants.
//!
//! Collaborative training pools data "provisioned from their participants"
//! (paper §II, Fig. 1: participants A–D). The shard helpers tag every
//! instance with its owner so the linkage structure's `S` component is
//! grounded in real provenance.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Dataset, ParticipantId};

/// Splits `dataset` into `participants` shards of near-equal size
/// (random assignment), tagging each shard's instances with its owner.
///
/// # Panics
///
/// Panics if `participants == 0` or exceeds the dataset size.
pub fn split(dataset: &Dataset, participants: usize, seed: u64) -> Vec<Dataset> {
    assert!(participants > 0, "need at least one participant");
    assert!(participants <= dataset.len(), "more participants than instances");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(&mut rng);

    let base = dataset.len() / participants;
    let extra = dataset.len() % participants;
    let mut shards = Vec::with_capacity(participants);
    let mut cursor = 0usize;
    for p in 0..participants {
        let take = base + usize::from(p < extra);
        let mut shard = dataset.subset(&indices[cursor..cursor + take]);
        shard.set_source(ParticipantId(p as u32));
        shards.push(shard);
        cursor += take;
    }
    shards
}

/// Re-combines shards into the server-side training pool, preserving
/// per-instance ownership (the centralised aggregation of Fig. 1).
///
/// # Panics
///
/// Panics if `shards` is empty.
pub fn merge(shards: &[Dataset]) -> Dataset {
    assert!(!shards.is_empty(), "no shards to merge");
    let mut merged = shards[0].clone();
    for shard in &shards[1..] {
        merged = merged.concat(shard);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_tensor::Tensor;

    fn dataset(n: usize) -> Dataset {
        let images = Tensor::from_fn(&[n, 1, 2, 2], |i| i as f32);
        Dataset::new(images, (0..n).map(|i| i % 3).collect())
    }

    #[test]
    fn split_covers_everything_once() {
        let ds = dataset(10);
        let shards = split(&ds, 3, 1);
        assert_eq!(shards.len(), 3);
        let sizes: Vec<usize> = shards.iter().map(Dataset::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));

        // Every original image appears exactly once across shards.
        let mut seen: Vec<f32> = shards
            .iter()
            .flat_map(|s| (0..s.len()).map(|i| s.image(i).sum()))
            .collect();
        seen.sort_by(f32::total_cmp);
        let mut orig: Vec<f32> = (0..10).map(|i| ds.image(i).sum()).collect();
        orig.sort_by(f32::total_cmp);
        assert_eq!(seen, orig);
    }

    #[test]
    fn shards_are_owner_tagged() {
        let shards = split(&dataset(9), 3, 2);
        for (p, shard) in shards.iter().enumerate() {
            assert!(shard
                .sources()
                .iter()
                .all(|&s| s == ParticipantId(p as u32)));
        }
    }

    #[test]
    fn merge_preserves_provenance() {
        let ds = dataset(8);
        let shards = split(&ds, 2, 3);
        let merged = merge(&shards);
        assert_eq!(merged.len(), 8);
        let zeros = merged.sources().iter().filter(|s| s.0 == 0).count();
        let ones = merged.sources().iter().filter(|s| s.0 == 1).count();
        assert_eq!(zeros, 4);
        assert_eq!(ones, 4);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn split_rejects_zero_participants() {
        let _ = split(&dataset(4), 0, 0);
    }
}
