//! A synthetic CIFAR-10 stand-in: 10 classes of 28×28×3 images.
//!
//! **Substitution note (DESIGN.md §2).** The paper trains on CIFAR-10
//! cropped to 28×28×3 (Tables I–II input). This generator produces a
//! 10-class distribution with the properties the experiments rely on:
//!
//! * classes are defined by *spatially structured* content (oriented
//!   gratings + class-coloured blobs), so convolutional features separate
//!   them and shallow-layer IRs visibly preserve the input (Experiment
//!   II's premise);
//! * instances vary by phase, position jitter, amplitude and pixel noise,
//!   so the task is non-trivial and augmentation helps;
//! * pixel values live in `[0, 1]` like normalised image data.

use caltrain_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Dataset;

/// Number of classes (CIFAR-10).
pub const CLASSES: usize = 10;

/// Image edge (paper tables crop CIFAR to 28).
pub const EDGE: usize = 28;

/// Channels (RGB).
pub const CHANNELS: usize = 3;

/// Per-class texture parameters: grating orientation (primary signal,
/// 18° apart), spatial frequency (secondary) and a *weak* RGB tint.
///
/// The class must be carried by **high-frequency luminance structure**:
/// (a) orientation survives in shallow-layer IR images, so Experiment II
/// sees the early-layer leak the paper reports; (b) the grating period
/// (~4–6 px) drops below Nyquist after the first 2×2 max-pool, so deep
/// IRs genuinely stop leaking — the same dynamics natural CIFAR images
/// give the paper. Position-coded or colour-coded classes would break
/// either property (position survives pooling; colour dies in the
/// grayscale IR projection).
fn class_params(class: usize) -> (f32, f32, [f32; 3]) {
    let angle = class as f32 * std::f32::consts::PI / CLASSES as f32;
    let freq = 1.6 + 0.15 * (class % 5) as f32;
    let colors = [
        [1.0, 0.3, 0.3],
        [0.3, 1.0, 0.3],
        [0.3, 0.3, 1.0],
        [1.0, 1.0, 0.2],
        [1.0, 0.2, 1.0],
        [0.2, 1.0, 1.0],
        [0.9, 0.6, 0.2],
        [0.5, 0.9, 0.5],
        [0.6, 0.4, 0.9],
        [0.8, 0.8, 0.8],
    ];
    (angle, freq, colors[class % CLASSES])
}

/// Renders one instance of `class` with the given nuisance parameters.
fn render(class: usize, phase: f32, angle_jitter: f32, amp: f32, rng: &mut StdRng) -> Tensor {
    let (angle0, freq, color) = class_params(class);
    let (sin_a, cos_a) = (angle0 + angle_jitter).sin_cos();
    // A common centred vignette (identical for every class) adds natural
    // low-frequency content without coding the class into position.
    let (cy, cx) = ((EDGE as f32 - 1.0) / 2.0, (EDGE as f32 - 1.0) / 2.0);
    let mut img = Tensor::zeros(&[CHANNELS, EDGE, EDGE]);
    let data = img.as_mut_slice();
    for y in 0..EDGE {
        for x in 0..EDGE {
            let u = cos_a * y as f32 + sin_a * x as f32;
            let grating = (freq * u + phase).sin() * 0.5 + 0.5;
            let dy = y as f32 - cy;
            let dx = x as f32 - cx;
            let vignette = (-(dy * dy + dx * dx) / 200.0).exp();
            for ch in 0..CHANNELS {
                let tint = 0.85 + 0.15 * color[ch];
                let base = 0.1 + amp * (0.55 * grating + 0.25 * vignette) * tint;
                let noisy = base + rng.gen_range(-0.04..0.04f32);
                data[ch * EDGE * EDGE + y * EDGE + x] = noisy.clamp(0.0, 1.0);
            }
        }
    }
    img
}

/// Generates one labelled instance of `class`.
pub fn sample(class: usize, rng: &mut StdRng) -> Tensor {
    let phase = rng.gen_range(0.0..std::f32::consts::TAU);
    let angle_jitter = rng.gen_range(-0.04..0.04f32);
    let amp = rng.gen_range(0.8..1.2);
    render(class, phase, angle_jitter, amp, rng)
}

/// Generates `(train, test)` datasets with class-balanced labels.
///
/// The paper's split is 50 000 / 10 000; call with those sizes (and
/// patience) for a paper-scale run, or smaller for the default harness.
pub fn generate(train: usize, test: usize, seed: u64) -> (Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    (generate_one(train, &mut rng), generate_one(test, &mut rng))
}

fn generate_one(n: usize, rng: &mut StdRng) -> Dataset {
    assert!(n > 0, "dataset must be non-empty");
    let mut data = Vec::with_capacity(n * CHANNELS * EDGE * EDGE);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % CLASSES;
        let img = sample(class, rng);
        data.extend_from_slice(img.as_slice());
        labels.push(class);
    }
    Dataset::new(
        Tensor::from_vec(data, &[n, CHANNELS, EDGE, EDGE]).expect("constructed consistently"),
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let (train, test) = generate(40, 20, 1);
        assert_eq!(train.images().dims(), &[40, 3, 28, 28]);
        assert_eq!(test.images().dims(), &[20, 3, 28, 28]);
        assert!(train.images().as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn class_balance() {
        let (train, _) = generate(100, 10, 2);
        for class in 0..CLASSES {
            assert_eq!(train.indices_of_class(class).len(), 10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = generate(10, 10, 3);
        let (b, _) = generate(10, 10, 3);
        assert_eq!(a.images().as_slice(), b.images().as_slice());
        let (c, _) = generate(10, 10, 4);
        assert_ne!(a.images().as_slice(), c.images().as_slice());
    }

    #[test]
    fn class_signal_is_orientation() {
        // Class 0's grating varies along y (angle 0), class 5's along x
        // (angle 90°): the directional gradient energies must separate
        // them regardless of the random phase.
        let grad_energy = |img: &Tensor| -> (f32, f32) {
            let d = img.as_slice();
            let (mut ey, mut ex) = (0.0f32, 0.0f32);
            for y in 0..EDGE - 1 {
                for x in 0..EDGE - 1 {
                    let v = d[y * EDGE + x]; // channel 0
                    let vy = d[(y + 1) * EDGE + x];
                    let vx = d[y * EDGE + x + 1];
                    ey += (vy - v) * (vy - v);
                    ex += (vx - v) * (vx - v);
                }
            }
            (ey, ex)
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let c0 = sample(0, &mut rng);
            let (ey, ex) = grad_energy(&c0);
            assert!(ey > 3.0 * ex, "class 0 varies along y: {ey} vs {ex}");
            let c5 = sample(5, &mut rng);
            let (ey, ex) = grad_energy(&c5);
            assert!(ex > 3.0 * ey, "class 5 varies along x: {ey} vs {ex}");
        }
    }

    #[test]
    fn instances_of_same_class_vary() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = sample(0, &mut rng);
        let b = sample(0, &mut rng);
        assert!(a.l2_distance(&b).unwrap() > 0.5, "nuisance must vary instances");
    }
}
