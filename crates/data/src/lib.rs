//! Datasets for the CalTrain reproduction.
//!
//! The paper evaluates on CIFAR-10 (Experiments I–III) and VGG-Face plus
//! the TrojanNN poisoned data (Experiment IV). Neither is available in
//! this environment, so this crate generates **class-structured synthetic
//! equivalents** that exercise the same code paths:
//!
//! * [`synthcifar`] — a 10-class, 28×28×3 procedural image distribution
//!   (textured class prototypes + per-instance nuisance), matching the
//!   input geometry of paper Tables I–II. Separable enough to train the
//!   paper's architectures yet visually "natural" enough that early-layer
//!   IRs leak input content, which Experiment II requires.
//! * [`faces`] — a multi-identity face-like distribution (24×24×3,
//!   identity-conditioned geometry) standing in for VGG-Face, including
//!   the mislabeling injection that reproduces the paper's measured label
//!   quality for class 0 (49.7 % correct / 24.3 % mislabeled, §VI-D).
//! * [`shard`] — partitioning a dataset across training participants,
//!   preserving per-instance provenance.
//! * [`sealed`] — the participant-side AES-GCM packaging of training
//!   batches ("locally seal their private data with their own symmetric
//!   keys", §IV-A), and its enclave-side authentication/opening.
//!
//! # Example
//!
//! ```
//! use caltrain_data::synthcifar;
//!
//! let (train, test) = synthcifar::generate(200, 50, 7);
//! assert_eq!(train.len(), 200);
//! assert_eq!(test.images().dims(), &[50, 3, 28, 28]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;

pub mod faces;
pub mod sealed;
pub mod shard;
pub mod synthcifar;

pub use dataset::{Dataset, LabelStatus, ParticipantId};
