//! A synthetic face-recognition dataset standing in for VGG-Face.
//!
//! **Substitution note (DESIGN.md §2).** Experiment IV needs (a) an
//! identity-classification model, (b) per-identity training sets with
//! known provenance, and (c) the messy label quality the authors found in
//! VGG-Face class 0 — 49.7 % correct, 24.3 % mislabeled, 26.0 % of links
//! dead (§VI-D). Identities here are procedural "faces" (face oval, eyes,
//! mouth, hair parameterised per identity); [`corrupt_class`] injects the
//! paper's exact mislabeling proportions with ground truth retained for
//! scoring.

use caltrain_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, LabelStatus};

/// Face image edge.
pub const EDGE: usize = 24;

/// Channels (RGB).
pub const CHANNELS: usize = 3;

/// Per-identity facial geometry derived deterministically from the
/// identity index.
#[derive(Debug, Clone, Copy)]
struct Identity {
    eye_dx: f32,
    eye_y: f32,
    mouth_y: f32,
    mouth_w: f32,
    face_rx: f32,
    face_ry: f32,
    skin: [f32; 3],
    hair: f32,
}

fn identity_params(id: usize) -> Identity {
    // Small deterministic hash-fan so nearby ids get unrelated faces.
    let h = |k: u64| -> f32 {
        let mut x = (id as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(k);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51AFD7ED558CCD);
        x ^= x >> 33;
        (x % 1000) as f32 / 1000.0
    };
    Identity {
        eye_dx: 3.0 + 2.5 * h(1),
        eye_y: 8.5 + 2.0 * h(2),
        mouth_y: 15.5 + 2.5 * h(3),
        mouth_w: 2.5 + 2.5 * h(4),
        face_rx: 7.0 + 2.0 * h(5),
        face_ry: 8.5 + 2.0 * h(6),
        skin: [0.55 + 0.3 * h(7), 0.4 + 0.25 * h(8), 0.3 + 0.2 * h(9)],
        hair: 0.1 + 0.5 * h(10),
    }
}

/// Renders one face of identity `id` with instance nuisance from `rng`.
pub fn sample(id: usize, rng: &mut StdRng) -> Tensor {
    let p = identity_params(id);
    let jx = rng.gen_range(-1.0..1.0f32);
    let jy = rng.gen_range(-1.0..1.0f32);
    let smile = rng.gen_range(-0.8..0.8f32);
    let light = rng.gen_range(0.85..1.15f32);

    let (cy, cx) = (12.0 + jy, 12.0 + jx);
    let mut img = Tensor::zeros(&[CHANNELS, EDGE, EDGE]);
    let data = img.as_mut_slice();
    for y in 0..EDGE {
        for x in 0..EDGE {
            let fy = y as f32;
            let fx = x as f32;
            // Face oval.
            let oval = ((fy - cy) / p.face_ry).powi(2) + ((fx - cx) / p.face_rx).powi(2);
            let mut rgb = [0.08f32, 0.08, 0.1]; // background
            if oval < 1.0 {
                rgb = p.skin;
                // Hair: top band inside the oval.
                if fy < cy - p.face_ry * 0.55 {
                    rgb = [p.hair, p.hair * 0.8, p.hair * 0.6];
                }
                // Eyes: dark discs.
                for side in [-1.0f32, 1.0] {
                    let ex = cx + side * p.eye_dx;
                    let ey = cy - 12.0 + p.eye_y;
                    if (fy - ey).powi(2) + (fx - ex).powi(2) < 1.8 {
                        rgb = [0.05, 0.05, 0.08];
                    }
                }
                // Mouth: horizontal bar with smile curvature.
                let my = cy - 12.0 + p.mouth_y + smile * ((fx - cx) / p.mouth_w).powi(2);
                if (fy - my).abs() < 0.9 && (fx - cx).abs() < p.mouth_w {
                    rgb = [0.6, 0.15, 0.15];
                }
            }
            for ch in 0..CHANNELS {
                let v = rgb[ch] * light + rng.gen_range(-0.03..0.03f32);
                data[ch * EDGE * EDGE + y * EDGE + x] = v.clamp(0.0, 1.0);
            }
        }
    }
    img
}

/// Generates a face dataset: `per_identity` images for each of
/// `identities` classes (labels are identity indices).
pub fn generate(identities: usize, per_identity: usize, seed: u64) -> Dataset {
    assert!(identities > 0 && per_identity > 0, "degenerate dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = identities * per_identity;
    let mut data = Vec::with_capacity(n * CHANNELS * EDGE * EDGE);
    let mut labels = Vec::with_capacity(n);
    for id in 0..identities {
        for _ in 0..per_identity {
            let img = sample(id, &mut rng);
            data.extend_from_slice(img.as_slice());
            labels.push(id);
        }
    }
    Dataset::new(
        Tensor::from_vec(data, &[n, CHANNELS, EDGE, EDGE]).expect("constructed consistently"),
        labels,
    )
}

/// The label-quality composition the paper measured for VGG-Face class 0
/// (§VI-D): 49.7 % correctly labelled, 24.3 % mislabeled, 26.0 % of image
/// links inaccessible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelQuality {
    /// Fraction of instances with correct labels.
    pub correct: f32,
    /// Fraction of instances depicting some *other* identity.
    pub mislabeled: f32,
    /// Fraction of instances that are simply unavailable.
    pub inaccessible: f32,
}

impl LabelQuality {
    /// The paper's measured VGG-Face class-0 composition.
    pub fn vggface_class0() -> Self {
        LabelQuality { correct: 0.497, mislabeled: 0.243, inaccessible: 0.260 }
    }
}

/// Rewrites the instances of `class` in `dataset` to match a measured
/// label-quality composition: mislabeled slots get images rendered from a
/// *different* identity (status `Mislabeled`), inaccessible slots are
/// dropped. Returns the new dataset and the realised
/// `(correct, mislabeled, dropped)` counts.
///
/// # Panics
///
/// Panics if `class` has no instances or only one identity exists.
pub fn corrupt_class(
    dataset: &Dataset,
    class: usize,
    identities: usize,
    quality: LabelQuality,
    seed: u64,
) -> (Dataset, (usize, usize, usize)) {
    assert!(identities > 1, "need another identity to mislabel from");
    let class_indices = dataset.indices_of_class(class);
    assert!(!class_indices.is_empty(), "class has no instances");
    let mut rng = StdRng::seed_from_u64(seed);

    let total = class_indices.len();
    let n_mislabeled = (total as f32 * quality.mislabeled).round() as usize;
    let n_dropped = (total as f32 * quality.inaccessible).round() as usize;
    let n_correct = total - n_mislabeled.min(total) - n_dropped.min(total - n_mislabeled);

    let mut out = dataset.clone();
    // First n_mislabeled slots become faces of other identities with the
    // class-0 label kept; the last n_dropped slots are removed.
    for (slot, &idx) in class_indices.iter().enumerate().take(n_mislabeled) {
        let mut other = rng.gen_range(0..identities);
        if other == class {
            other = (other + 1) % identities;
        }
        let img = sample(other, &mut rng);
        let _ = slot;
        out.set_image(idx, &img);
        out.set_status(idx, LabelStatus::Mislabeled { actual: other });
    }
    let dropped: Vec<usize> = class_indices[total - n_dropped..].to_vec();
    let keep: Vec<usize> =
        (0..dataset.len()).filter(|i| !dropped.contains(i)).collect();
    let out = out.subset(&keep);
    (out, (n_correct, n_mislabeled, n_dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_balance() {
        let ds = generate(4, 5, 1);
        assert_eq!(ds.images().dims(), &[20, 3, 24, 24]);
        for id in 0..4 {
            assert_eq!(ds.indices_of_class(id).len(), 5);
        }
    }

    #[test]
    fn identities_are_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let a1 = sample(0, &mut rng);
        let a2 = sample(0, &mut rng);
        let b = sample(1, &mut rng);
        let intra = a1.l2_distance(&a2).unwrap();
        let inter = a1.l2_distance(&b).unwrap();
        assert!(inter > intra, "inter {inter} must exceed intra {intra}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(3, 4, 7);
        let b = generate(3, 4, 7);
        assert_eq!(a.images().as_slice(), b.images().as_slice());
    }

    #[test]
    fn corruption_matches_paper_composition() {
        let ds = generate(8, 125, 3); // 1000 class instances total, 125 per id
        let (out, (correct, mislabeled, dropped)) =
            corrupt_class(&ds, 0, 8, LabelQuality::vggface_class0(), 9);
        // Paper: 1000 images, 49.7% correct, 24.3% mislabeled, 26% dead.
        assert_eq!(mislabeled, 30, "24.3% of 125");
        assert_eq!(dropped, 33, "26% of 125");
        assert_eq!(correct, 125 - 30 - 33);
        assert_eq!(out.len(), ds.len() - dropped);

        let still_class0 = out.indices_of_class(0);
        let mislabeled_count = still_class0
            .iter()
            .filter(|&&i| matches!(out.statuses()[i], LabelStatus::Mislabeled { .. }))
            .count();
        assert_eq!(mislabeled_count, 30);
    }

    #[test]
    fn mislabeled_images_depict_other_identities() {
        let ds = generate(4, 50, 4);
        let (out, _) = corrupt_class(&ds, 0, 4, LabelQuality::vggface_class0(), 5);
        for i in out.indices_of_class(0) {
            if let LabelStatus::Mislabeled { actual } = out.statuses()[i] {
                assert_ne!(actual, 0, "mislabeled instance must depict another identity");
            }
        }
    }
}
