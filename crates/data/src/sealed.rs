//! Participant-side sealing of training data, and the enclave-side
//! open-and-authenticate path.
//!
//! Paper §IV-A: participants "locally seal their private data with their
//! own symmetric keys and submit the encrypted data to a training
//! server"; inside the enclave "we use AES-GCM to authenticate the data
//! sources of the encrypted data", and batches that fail the check are
//! discarded. Labels travel as *associated data* — the paper notes
//! participants release labels attached to their encrypted instances
//! (§III), so labels are authenticated but not confidential.

use caltrain_crypto::gcm::AesGcm;
use caltrain_crypto::CryptoError;
use caltrain_tensor::Tensor;

use crate::{Dataset, ParticipantId};

/// A sealed batch as it travels from participant to training server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBatch {
    /// Claimed source (authenticated via the GCM tag under that source's
    /// provisioned key).
    pub source: ParticipantId,
    /// Cleartext labels (released per paper §III), bound into the AAD.
    pub labels: Vec<u32>,
    /// Per-sample shape `[c, h, w]`, bound into the AAD.
    pub sample_dims: [u32; 3],
    /// GCM nonce.
    pub nonce: [u8; 12],
    /// Encrypted image payload plus tag.
    pub ciphertext: Vec<u8>,
}

impl SealedBatch {
    /// The associated data every seal/open binds: version, source, shape
    /// and labels.
    fn aad(&self) -> Vec<u8> {
        Self::aad_parts(self.source, self.sample_dims, &self.labels)
    }

    fn aad_parts(source: ParticipantId, dims: [u32; 3], labels: &[u32]) -> Vec<u8> {
        let mut aad = Vec::with_capacity(16 + labels.len() * 4);
        aad.extend_from_slice(b"caltrain-batch-v1");
        aad.extend_from_slice(&source.0.to_le_bytes());
        for d in dims {
            aad.extend_from_slice(&d.to_le_bytes());
        }
        for l in labels {
            aad.extend_from_slice(&l.to_le_bytes());
        }
        aad
    }
}

/// Seals a participant's dataset into batches of `batch_size` images
/// under that participant's `key`.
///
/// `nonce_salt` must be unique per (key, upload) — the caller passes an
/// upload counter; batch indices are mixed in per batch.
pub fn seal_dataset(
    dataset: &Dataset,
    source: ParticipantId,
    key: &[u8; 16],
    nonce_salt: u64,
    batch_size: usize,
) -> Vec<SealedBatch> {
    let cipher = AesGcm::new_128(key);
    let [c, h, w] = dataset.sample_dims();
    let dims = [c as u32, h as u32, w as u32];
    let stride = c * h * w;

    dataset
        .batch_bounds(batch_size)
        .into_iter()
        .enumerate()
        .map(|(batch_idx, (start, end))| {
            let labels: Vec<u32> = dataset.labels()[start..end].iter().map(|&l| l as u32).collect();
            let plaintext: Vec<u8> = dataset.images().as_slice()[start * stride..end * stride]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            let mut nonce = [0u8; 12];
            nonce[..8].copy_from_slice(&nonce_salt.to_le_bytes());
            nonce[8..].copy_from_slice(&(batch_idx as u32).to_le_bytes());
            let aad = SealedBatch::aad_parts(source, dims, &labels);
            let ciphertext = cipher.seal(&nonce, &plaintext, &aad);
            SealedBatch { source, labels, sample_dims: dims, nonce, ciphertext }
        })
        .collect()
}

/// Authenticates and decrypts one sealed batch with the key provisioned
/// for its claimed source — the in-enclave "Authenticity and Integrity
/// Checking" step.
///
/// # Errors
///
/// Returns [`CryptoError::AuthenticationFailed`] for forged sources,
/// tampered payloads or tampered labels; such batches are discarded by
/// the pipeline.
pub fn open_batch(batch: &SealedBatch, key: &[u8; 16]) -> Result<Dataset, CryptoError> {
    let cipher = AesGcm::new_128(key);
    let plaintext = cipher.open(&batch.nonce, &batch.ciphertext, &batch.aad())?;

    let [c, h, w] = batch.sample_dims;
    let stride = (c * h * w) as usize;
    let n = batch.labels.len();
    if plaintext.len() != n * stride * 4 {
        return Err(CryptoError::InvalidLength {
            what: "batch payload",
            len: plaintext.len(),
            expected: n * stride * 4,
        });
    }
    let mut values = Vec::with_capacity(n * stride);
    for chunk in plaintext.chunks_exact(4) {
        values.push(f32::from_le_bytes(chunk.try_into().expect("chunks_exact(4)")));
    }
    let images = Tensor::from_vec(values, &[n, c as usize, h as usize, w as usize])
        .expect("length checked above");
    let mut ds = Dataset::new(images, batch.labels.iter().map(|&l| l as usize).collect());
    ds.set_source(batch.source);
    Ok(ds)
}

// The parallel ingestion path (caltrain-core) verifies and opens sealed
// batches on worker threads; batches and opened datasets must stay
// thread-mobile. Compile-time audit, not a runtime test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SealedBatch>();
    assert_send_sync::<Dataset>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let images = Tensor::from_fn(&[n, 1, 2, 2], |i| (i as f32) / 10.0);
        Dataset::new(images, (0..n).map(|i| i % 2).collect())
    }

    #[test]
    fn seal_open_roundtrip() {
        let ds = dataset(7);
        let key = [0x42u8; 16];
        let batches = seal_dataset(&ds, ParticipantId(3), &key, 0, 3);
        assert_eq!(batches.len(), 3, "7 images in batches of 3");
        let mut total = 0;
        for b in &batches {
            let opened = open_batch(b, &key).unwrap();
            assert!(opened.sources().iter().all(|&s| s == ParticipantId(3)));
            total += opened.len();
        }
        assert_eq!(total, 7);
        let first = open_batch(&batches[0], &key).unwrap();
        assert_eq!(first.image(0).as_slice(), ds.image(0).as_slice());
        assert_eq!(first.labels(), &ds.labels()[..3]);
    }

    #[test]
    fn wrong_key_discarded() {
        let ds = dataset(4);
        let batches = seal_dataset(&ds, ParticipantId(0), &[1u8; 16], 0, 4);
        assert_eq!(
            open_batch(&batches[0], &[2u8; 16]),
            Err(CryptoError::AuthenticationFailed),
            "unregistered-source batches must fail authentication"
        );
    }

    #[test]
    fn spoofed_source_discarded() {
        let ds = dataset(4);
        let key = [7u8; 16];
        let mut batch = seal_dataset(&ds, ParticipantId(0), &key, 0, 4).remove(0);
        batch.source = ParticipantId(1); // claim someone else sent it
        assert_eq!(open_batch(&batch, &key), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn tampered_labels_discarded() {
        let ds = dataset(4);
        let key = [7u8; 16];
        let mut batch = seal_dataset(&ds, ParticipantId(0), &key, 0, 4).remove(0);
        batch.labels[0] ^= 1; // poison a label in transit
        assert_eq!(open_batch(&batch, &key), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn tampered_payload_discarded() {
        let ds = dataset(4);
        let key = [7u8; 16];
        let mut batch = seal_dataset(&ds, ParticipantId(0), &key, 0, 4).remove(0);
        let mid = batch.ciphertext.len() / 2;
        batch.ciphertext[mid] ^= 0x10;
        assert_eq!(open_batch(&batch, &key), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn nonces_unique_across_batches_and_uploads() {
        let ds = dataset(8);
        let key = [9u8; 16];
        let a = seal_dataset(&ds, ParticipantId(0), &key, 0, 2);
        let b = seal_dataset(&ds, ParticipantId(0), &key, 1, 2);
        let mut nonces: Vec<[u8; 12]> =
            a.iter().chain(b.iter()).map(|x| x.nonce).collect();
        nonces.sort();
        nonces.dedup();
        assert_eq!(nonces.len(), 8, "all nonces distinct");
    }
}
