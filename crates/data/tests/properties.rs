//! Property-based tests for datasets, shards and sealed batches.

use caltrain_data::sealed::{open_batch, seal_dataset};
use caltrain_data::{shard, Dataset, ParticipantId};
use caltrain_tensor::Tensor;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..24, 1usize..4, 2usize..6).prop_map(|(n, c, hw)| {
        let images = Tensor::from_fn(&[n, c, hw, hw], |i| ((i * 31) % 251) as f32 / 250.0);
        Dataset::new(images, (0..n).map(|i| i % 5).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn seal_open_roundtrip_any_geometry(
        ds in dataset_strategy(),
        key in proptest::array::uniform16(any::<u8>()),
        batch_size in 1usize..10,
        salt in any::<u64>(),
    ) {
        let batches = seal_dataset(&ds, ParticipantId(3), &key, salt, batch_size);
        let mut total = 0usize;
        let mut cursor = 0usize;
        for b in &batches {
            let opened = open_batch(b, &key).unwrap();
            total += opened.len();
            for i in 0..opened.len() {
                let got = opened.image(i);
                let want = ds.image(cursor + i);
                prop_assert_eq!(got.as_slice(), want.as_slice());
                prop_assert_eq!(opened.labels()[i], ds.labels()[cursor + i]);
            }
            cursor += opened.len();
        }
        prop_assert_eq!(total, ds.len());
    }

    #[test]
    fn sealed_batches_never_open_under_wrong_key(
        ds in dataset_strategy(),
        k1 in proptest::array::uniform16(any::<u8>()),
        k2 in proptest::array::uniform16(any::<u8>()),
    ) {
        prop_assume!(k1 != k2);
        let batches = seal_dataset(&ds, ParticipantId(0), &k1, 0, 8);
        for b in &batches {
            prop_assert!(open_batch(b, &k2).is_err());
        }
    }

    #[test]
    fn shards_partition_the_dataset(
        ds in dataset_strategy(),
        parts in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(parts <= ds.len());
        let shards = shard::split(&ds, parts, seed);
        prop_assert_eq!(shards.len(), parts);
        let total: usize = shards.iter().map(Dataset::len).sum();
        prop_assert_eq!(total, ds.len());
        // Shard sizes are balanced within one instance.
        let min = shards.iter().map(Dataset::len).min().unwrap();
        let max = shards.iter().map(Dataset::len).max().unwrap();
        prop_assert!(max - min <= 1);
        // Merge restores the full multiset of images.
        let merged = shard::merge(&shards);
        let mut sums: Vec<f32> = (0..merged.len()).map(|i| merged.image(i).sum()).collect();
        let mut orig: Vec<f32> = (0..ds.len()).map(|i| ds.image(i).sum()).collect();
        sums.sort_by(f32::total_cmp);
        orig.sort_by(f32::total_cmp);
        for (a, b) in sums.iter().zip(&orig) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn subset_then_concat_is_identity_permutation(
        ds in dataset_strategy(),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let shuffled = ds.shuffled(&mut rng);
        prop_assert_eq!(shuffled.len(), ds.len());
        let mut sums: Vec<f32> = (0..shuffled.len()).map(|i| shuffled.image(i).sum()).collect();
        let mut orig: Vec<f32> = (0..ds.len()).map(|i| ds.image(i).sum()).collect();
        sums.sort_by(f32::total_cmp);
        orig.sort_by(f32::total_cmp);
        prop_assert_eq!(sums, orig);
    }

    #[test]
    fn batch_bounds_exactly_cover(ds in dataset_strategy(), bs in 1usize..12) {
        let bounds = ds.batch_bounds(bs);
        let mut expected_start = 0usize;
        for (s, e) in &bounds {
            prop_assert_eq!(*s, expected_start);
            prop_assert!(e > s);
            prop_assert!(e - s <= bs);
            expected_start = *e;
        }
        prop_assert_eq!(expected_start, ds.len());
    }
}
