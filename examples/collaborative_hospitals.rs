//! A multi-party scenario from the paper's motivation: hospitals that
//! cannot share raw imaging data by law, one of which is compromised.
//!
//! Demonstrates the confidentiality mechanisms:
//!  * an attacker without a provisioned key cannot inject data;
//!  * a compromised *network path* (tampered ciphertext) is detected and
//!    the batch discarded;
//!  * a rogue server running modified training code fails attestation,
//!    so no hospital provisions its key to it.
//!
//! Run with: `cargo run --release --example collaborative_hospitals`

use caltrain::core::participant::Participant;
use caltrain::core::pipeline::{CalTrain, PipelineConfig};
use caltrain::core::partition::Partition;
use caltrain::data::{shard, synthcifar, ParticipantId};
use caltrain::enclave::{ChannelServer, EnclaveConfig, MrEnclave, Platform};
use caltrain::nn::{zoo, Hyper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, _test) = synthcifar::generate(300, 50, 11);
    let shards = shard::split(&train, 3, 3);

    let net = zoo::cifar10_10layer_scaled(32, 11)?;
    let config = PipelineConfig {
        partition: Partition { cut: 2 },
        hyper: Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
        batch_size: 16,
        augment: None,
        heap_bytes: 1 << 21,
        snapshots: false,
        ..PipelineConfig::default()
    };
    let mut system = CalTrain::new(net, config, b"hospitals")?;

    // Three hospitals enrol; each keeps its key and data local.
    let mut hospitals: Vec<Participant> = shards
        .into_iter()
        .enumerate()
        .map(|(i, s)| Participant::new(ParticipantId(i as u32), s, b"hospital-secrets"))
        .collect();
    for h in &hospitals {
        system.enroll(h.clone())?;
        println!("hospital {} enrolled after verifying the enclave quote", h.id());
    }

    // Hospital uploads: sealed batches over the untrusted network.
    let mut batches = Vec::new();
    for h in &mut hospitals {
        batches.extend(h.seal_upload(16));
    }

    // Attack 1: an outsider (no provisioned key) injects poisoned batches.
    let mut outsider =
        Participant::new(ParticipantId(99), synthcifar::generate(32, 1, 666).0, b"attacker");
    batches.extend(outsider.seal_upload(16));

    // Attack 2: a man-in-the-middle flips bits in one hospital batch.
    let tampered = batches.len() / 2;
    let mid = batches[tampered].ciphertext.len() / 2;
    batches[tampered].ciphertext[mid] ^= 0x40;

    let stats = system.ingest(&batches);
    println!(
        "\ningestion: {} batches accepted ({} instances), {} discarded \
         (outsider + tampered)",
        stats.accepted, stats.instances, stats.discarded
    );
    assert_eq!(stats.discarded, 3, "two outsider batches + one tampered batch");

    // Attack 3: a rogue server offers modified training code. The
    // hospitals' provisioning client refuses: the measurement differs
    // from the code everyone agreed on.
    let rogue_platform = Platform::with_seed(b"rogue-server");
    let rogue = rogue_platform.create_enclave(&EnclaveConfig {
        name: "trainer".into(),
        code_identity: b"caltrain-training-enclave-v1-with-backdoor".to_vec(),
        heap_bytes: 1 << 21,
    })?;
    let rogue_chan = ChannelServer::new(&rogue);
    let (rogue_quote, rogue_pub) = rogue_chan.hello();
    let agreed = MrEnclave::build(b"caltrain-training-enclave-v1", 1 << 21);
    let refused = hospitals[0]
        .provision_key(&rogue_platform.attestation_service(), &agreed, &rogue_quote, &rogue_pub)
        .is_err();
    println!("rogue-server provisioning refused: {refused}");
    assert!(refused);

    // Train on the accepted pool only.
    let outcome = system.train(3)?;
    println!(
        "\ntrained 3 epochs on the clean pool; losses {:?}",
        outcome
            .epoch_losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "enclave cycle breakdown: {:?}",
        system.platform().cycle_breakdown()
    );
    Ok(())
}
