//! Backdoor forensics: the paper's Experiment IV story as an application.
//!
//! A malicious participant implants a trojan backdoor into a face model
//! through legitimate upload channels. A model user later notices that a
//! stamped photo of person 2 is classified as person 0, and uses the
//! fingerprint query service to identify the poisoned training instances
//! and the participant that contributed them — then verifies the evidence
//! against the recorded hashes.
//!
//! Run with: `cargo run --release --example backdoor_forensics`

use caltrain::attack::metrics::{evaluate_attack, score_attribution};
use caltrain::attack::{build_poisoned_set, implant_backdoor, TrojanTrigger};
use caltrain::core::accountability::{FingerprintingStage, QueryService};
use caltrain::data::{faces, LabelStatus, ParticipantId};
use caltrain::enclave::Platform;
use caltrain::nn::{zoo, Hyper, KernelMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TARGET: usize = 0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Honest population: 6 identities, one participant each.
    let identities = 6;
    let clean = faces::generate(identities, 30, 91);
    let mut pool_parts = Vec::new();
    for id in 0..identities {
        let mut s = clean.subset(&clean.indices_of_class(id));
        s.set_source(ParticipantId(id as u32));
        pool_parts.push(s);
    }
    let mut pool = pool_parts[0].clone();
    for p in &pool_parts[1..] {
        pool = pool.concat(p);
    }

    // Train the victim model.
    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };
    let mut model = zoo::face_net(identities, 91)?;
    let mut rng = StdRng::seed_from_u64(92);
    for _ in 0..8 {
        let sh = pool.shuffled(&mut rng);
        for (s, t) in sh.batch_bounds(16) {
            let idx: Vec<usize> = (s..t).collect();
            let chunk = sh.subset(&idx);
            model.train_batch(chunk.images(), chunk.labels(), &hyper, KernelMode::Native)?;
        }
    }

    // The malicious participant (id 6) retrains a backdoor in. The large
    // stamp approximates TrojanNN's neuron-optimised triggers.
    let trigger = TrojanTrigger { size: 7, margin: 1 };
    let poisoned =
        build_poisoned_set(36, TARGET, identities + 40, &trigger, ParticipantId(6), 93);
    implant_backdoor(&mut model, &pool, &poisoned, &hyper, 6, 16, 94)?;
    let full_pool = pool.concat(&poisoned);

    let holdout = faces::generate(identities, 5, 95);
    let attack = evaluate_attack(&mut model, &holdout, &trigger, TARGET)?;
    println!(
        "backdoor implanted: success rate {:.0}%, clean accuracy {:.0}%",
        attack.success_rate * 100.0,
        attack.clean_accuracy * 100.0
    );

    // CalTrain's fingerprinting stage records Ω for every instance.
    let platform = Platform::with_seed(b"forensics");
    let stage = FingerprintingStage::launch(&platform, (model.param_count() * 4).max(1 << 20))?;
    let mut fp_model = model.clone();
    let db = stage.build_db(&mut fp_model, &full_pool, 32)?;
    let service = QueryService::new(db);

    // Runtime misprediction: find a stamped non-target photo the backdoor
    // hijacks (the model user's "erroneous prediction at runtime").
    let (victim_id, stamped) = (1..identities)
        .flat_map(|id| holdout.indices_of_class(id))
        .find_map(|idx| {
            let s = trigger.stamp(&holdout.image(idx));
            let batch = s.reshaped(&[1, 3, 24, 24]).ok()?;
            use caltrain::nn::KernelMode as KM;
            (model.predict(&batch, KM::Native).ok()?[0] == TARGET)
                .then(|| (holdout.labels()[idx], s))
        })
        .expect("the backdoor hijacks at least one holdout identity");
    let report = service.investigate(&mut model, &stamped, 9)?;
    println!(
        "\nmisprediction: identity {victim_id} classified as {} — querying 9 nearest \
         fingerprints",
        report.predicted
    );
    let mut poisoned_hits = Vec::new();
    for (rank, n) in report.neighbors.iter().enumerate() {
        let truth = full_pool.statuses()[n.record];
        println!(
            "  nn{:<2} distance {:.3}  source participant {}  [{}]",
            rank + 1,
            n.distance,
            n.source,
            match truth {
                LabelStatus::Poisoned => "POISONED",
                LabelStatus::Mislabeled { .. } => "mislabeled",
                LabelStatus::Clean => "normal",
            }
        );
        if truth == LabelStatus::Poisoned {
            poisoned_hits.push(n.record);
        }
    }
    println!("demand original data from participants {:?}", report.demand_from);

    // The investigator verifies handed-over evidence byte-for-byte.
    let evidence = full_pool.image_bytes(report.neighbors[0].record);
    println!(
        "hash verification of first neighbour's submission: {}",
        service.verify_submission(report.neighbors[0].record, &evidence)?
    );

    let flagged: Vec<usize> = report.neighbors.iter().map(|n| n.record).collect();
    let score = score_attribution(&full_pool, &flagged);
    println!(
        "attribution precision {:.0}% — the malicious participant is exposed",
        score.precision * 100.0
    );
    assert!(
        report.demand_from.contains(&6),
        "the malicious participant must be among the demanded sources"
    );
    Ok(())
}
