//! Dynamic partition re-assessment (paper §IV-B): after each epoch,
//! participants measure how much the semi-trained model's IRs leak and
//! adjust the FrontNet/BackNet cut for the next epoch.
//!
//! Run with: `cargo run --release --example partition_advisor`

use caltrain::assess::{assess_model, ExposureConfig};
use caltrain::core::pipeline::{CalTrain, PipelineConfig};
use caltrain::core::partition::Partition;
use caltrain::data::synthcifar;
use caltrain::nn::{zoo, Hyper, KernelMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, probes) = synthcifar::generate(300, 8, 17);

    let net = zoo::cifar10_18layer_scaled(32, 17)?;
    let config = PipelineConfig {
        partition: Partition { cut: 2 },
        hyper: Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
        batch_size: 16,
        augment: None,
        heap_bytes: 1 << 22,
        snapshots: true,
        ..PipelineConfig::default()
    };
    let mut system = CalTrain::new(net, config, b"advisor")?;
    system.enroll_and_ingest(&train, 4, 18)?;

    // An independently trained oracle model plays IRValNet.
    let mut irval = zoo::irvalnet(32, 17)?;
    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };
    for _ in 0..6 {
        for (s, t) in train.batch_bounds(16) {
            let idx: Vec<usize> = (s..t).collect();
            let chunk = train.subset(&idx);
            irval.train_batch(chunk.images(), chunk.labels(), &hyper, KernelMode::Native)?;
        }
    }

    let exposure_cfg = ExposureConfig { probes: 2, max_channels: Some(8), threshold_factor: 1.0 };
    let mut current_cut = 2usize;
    for epoch in 1..=4 {
        let outcome = system.train(1)?;
        let mut snapshot = outcome.snapshots.last().expect("snapshots enabled").clone();
        let report = assess_model(&mut snapshot, &mut irval, probes.images(), &exposure_cfg)?;

        println!("\nepoch {epoch}: δµ = {:.3}", report.uniform_baseline);
        for l in &report.layers {
            let leak = if l.min_kl < report.uniform_baseline { "LEAKS" } else { "safe" };
            println!(
                "  layer {:>2}: KL range [{:>7.3}, {:>7.3}] {leak}",
                l.layer + 1,
                l.min_kl,
                l.max_kl
            );
        }
        match report.recommended_cut {
            Some(cut) if cut.max(1) != current_cut && cut < system.network().num_layers() => {
                current_cut = cut.max(1); // keep at least one layer protected
                println!("  advisor: repartition to cut = {current_cut}");
                system.repartition(Partition { cut: current_cut })?;
            }
            _ => println!("  advisor: keep current partition (cut = {current_cut})"),
        }
    }

    println!(
        "\nfinal partition cut: {current_cut} (simulated time so far: {:.2} s)",
        system.platform().elapsed().seconds
    );
    Ok(())
}
