//! Quickstart: the complete CalTrain lifecycle in one file.
//!
//! Four distrusting participants pool encrypted synthetic CIFAR-style
//! data, train a 10-layer model inside the (simulated) SGX enclave,
//! release the model, fingerprint the training set, and answer one
//! accountability query.
//!
//! Run with: `cargo run --release --example quickstart`

use caltrain::core::accountability::QueryService;
use caltrain::core::pipeline::{CalTrain, PipelineConfig};
use caltrain::core::partition::Partition;
use caltrain::data::{synthcifar, ParticipantId};
use caltrain::nn::metrics::evaluate;
use caltrain::nn::{zoo, Hyper, KernelMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic 10-class image data, split later across participants.
    let (train, test) = synthcifar::generate(600, 200, 42);
    println!("data: {} train / {} test instances", train.len(), test.len());

    // 2. Boot the deployment: SGX platform + attested training enclave.
    let net = zoo::cifar10_10layer_scaled(16, 42)?;
    let config = PipelineConfig {
        partition: Partition { cut: 2 }, // first two layers in-enclave
        hyper: Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
        batch_size: 32,
        augment: None,
        heap_bytes: 1 << 22,
        snapshots: false,
        ..PipelineConfig::default()
    };
    let mut system = CalTrain::new(net, config, b"quickstart")?;

    // 3. Enrol four participants (remote attestation + key provisioning)
    //    and ingest their sealed uploads.
    let stats = system.enroll_and_ingest(&train, 4, 7)?;
    println!(
        "ingested {} batches / {} instances ({} discarded)",
        stats.accepted, stats.instances, stats.discarded
    );

    // 4. Train for a few epochs; the enclave clock ticks the whole time.
    let outcome = system.train(6)?;
    for (i, loss) in outcome.epoch_losses.iter().enumerate() {
        println!("epoch {}: mean loss {loss:.4}", i + 1);
    }
    let acc = evaluate(system.network_mut(), test.images(), test.labels(), 64, KernelMode::Native)?;
    println!("test accuracy: top1 {:.1}%  top2 {:.1}%", acc.top1 * 100.0, acc.top2 * 100.0);
    println!(
        "simulated training time: {:.2} s ({} EPC pages paged out)",
        system.platform().elapsed().seconds,
        system.platform().epc_stats().pages_evicted,
    );

    // 5. Release the model to participant 0 (FrontNet sealed to them).
    let released = system.release_model(ParticipantId(0))?;
    println!(
        "released model: {} sealed FrontNet bytes + {} clear BackNet bytes",
        released.front_sealed.len(),
        released.back_bytes.len()
    );

    // 6. Fingerprint every training instance and answer a query.
    let db = system.build_linkage_db()?;
    let service = QueryService::new(db);
    let probe = test.image(0);
    let report = service.investigate(system.network_mut(), &probe, 5)?;
    println!(
        "query: predicted class {}, top-5 neighbour distances {:?}, demand data from {:?}",
        report.predicted,
        report.neighbors.iter().map(|n| (n.distance * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
        report.demand_from
    );
    Ok(())
}
