#!/usr/bin/env bash
# CI entry point: exactly what a release gate needs, in dependency order.
# The workspace builds fully offline (all dependencies are vendored under
# vendor/), so --offline both enforces and documents that property.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

# Second pass with the worker pool forced on: every component that
# defaults its Parallelism from the environment (hub rounds, batch
# ingestion, linkage scans) runs its threaded path, and the determinism
# tests prove it changes nothing.
echo "==> cargo test -q (CALTRAIN_WORKERS=4 — threaded runtime paths)"
CALTRAIN_WORKERS=4 cargo test -q --offline

# Third pass on the scalar kernel rung: CALTRAIN_SIMD=0 forces the
# blocked/packed fallback under the native dispatcher, and the nn
# determinism suite (full trajectories across kernel modes × worker
# counts) plus the tensor kernel/epilogue tests prove the rung is still
# bit-identical. On hosts without AVX2 this is a re-run of the default
# path; on AVX2 hosts it is the only coverage the fallback gets.
echo "==> determinism suite (CALTRAIN_SIMD=0 — scalar fallback rung)"
CALTRAIN_SIMD=0 cargo test -q --offline -p caltrain-tensor
CALTRAIN_SIMD=0 CALTRAIN_WORKERS=4 cargo test -q --offline -p caltrain-nn \
  --test pool_determinism

# The thread-reuse gate is only sound as the sole test in its binary:
# the spawn counter it asserts on is process-global, so a sibling test
# growing the pool for its own batches would make the zero-delta
# assertion racy. The convention lives in a doc comment; this makes it
# structural.
echo "==> pool_thread_reuse.rs single-test convention"
reuse_tests=$(grep -c '#\[test\]' crates/nn/tests/pool_thread_reuse.rs)
if [ "$reuse_tests" -ne 1 ]; then
  echo "pool_thread_reuse.rs must hold exactly one #[test] (found $reuse_tests):"
  echo "the process-global spawn counter makes sibling tests racy."
  exit 1
fi

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --offline --no-run

# Snapshot the committed BENCH_*.json baselines (from HEAD, not the
# working tree — a previous uncommitted ci.sh run already overwrote the
# working-tree copies) so bench_diff compares this run against the
# trajectory the repo last recorded. Files not yet committed fall back
# to their working-tree copy.
BENCH_BASELINE_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_BASELINE_DIR"' EXIT
for f in BENCH_*.json; do
  [ -e "$f" ] || continue
  git show "HEAD:$f" > "$BENCH_BASELINE_DIR/$f" 2>/dev/null \
    || cp "$f" "$BENCH_BASELINE_DIR/$f"
done

# Executes the parallel-runtime gate: the pool-concurrency proof, the
# >= 1.5x modeled 4-hub speedup, and the bit-identical-results
# assertions at 1/2/4/8 workers (all assert!()s inside the bench).
echo "==> cargo bench --bench parallel_scaling (runtime scaling gate)"
cargo bench --offline --bench parallel_scaling

# Layer-kernel gate in smoke mode: trains the zoo model over the
# reference (no-reuse), reused-scratch and 4-worker paths, asserts all
# three produce bit-identical losses and weights, checks the steady-state
# allocation ceiling, and regenerates BENCH_training.json. The 1.15x
# wall-clock speedup gate only runs in full (non-smoke) benches, so a
# loaded CI host cannot flake this step.
echo "==> cargo bench --bench training_throughput -- --smoke (determinism + JSON gate)"
cargo bench --offline --bench training_throughput -- --smoke

# The regenerated report must carry the PR 7 job-graph and batch-1
# fields — bench_diff and the trend watch key on their names, so a
# silent rename (or a bench refactor dropping one) would turn both
# watches into no-ops for exactly the metrics this PR exists to pin.
echo "==> BENCH_training.json carries the job-graph fields"
for field in phase_handoffs_per_conv phase_handoffs_per_conv_backward \
             batch1_w4_speedup; do
  grep -q "\"$field\"" BENCH_training.json \
    || { echo "BENCH_training.json is missing \"$field\""; exit 1; }
done

# Batch-1 inference smoke under a forced 4-worker pool: the row-tiled
# shared wide GEMM path must produce bit-identical outputs at 1 vs 4
# workers and spawn zero threads once warm (all assert!()s inside).
echo "==> batch-1 inference smoke (CALTRAIN_WORKERS=4, row-tiled GEMM)"
CALTRAIN_WORKERS=4 cargo bench --offline --bench training_throughput -- \
  --smoke --batch1-only

# Fault-injection scenario corpus (crates/sim, see SCENARIOS.md): every
# scenario family over a fixed seed set, at both worker counts. Each run
# prints one stable line (trace digest + final-weights digest); diffing
# the two outputs is the worker-count-invariance gate for the *faulted*
# trajectories, on top of the per-scenario invariant assert!()s (cycle
# ledger, fingerprint completeness, poisoner attribution) that fail the
# run directly. The two-seed subset is the smoke corpus: the whole step
# stays well under a minute (~10s); widen --seeds for a deeper sweep.
echo "==> scenario corpus (CALTRAIN_WORKERS=1 vs 4 must match bitwise)"
SIM_OUT_W1="$(mktemp)"
SIM_OUT_W4="$(mktemp)"
trap 'rm -rf "$BENCH_BASELINE_DIR" "$SIM_OUT_W1" "$SIM_OUT_W4"' EXIT
CALTRAIN_WORKERS=1 cargo run --offline -q -p caltrain-sim -- \
  --all --seeds 1,2 | tee "$SIM_OUT_W1"
CALTRAIN_WORKERS=4 cargo run --offline -q -p caltrain-sim -- \
  --all --seeds 1,2 > "$SIM_OUT_W4"
diff "$SIM_OUT_W1" "$SIM_OUT_W4" \
  || { echo "scenario corpus diverged across worker counts"; exit 1; }

# Campaign smoke (see SCENARIOS.md "Campaigns"): bounded random walks
# over the whole fault alphabet — hub faults, channel ops, EPC pressure,
# clock skew — with the full invariant set checked every round. Fixed
# seeds and a 10-round step cap keep the step to a few seconds; each
# campaign line carries the trace + weights digests, so the 1-vs-4
# worker diff extends the invariance gate to multi-fault walks.
echo "==> campaign smoke (CALTRAIN_WORKERS=1 vs 4 must match bitwise)"
CAMP_OUT_W1="$(mktemp)"
CAMP_OUT_W4="$(mktemp)"
trap 'rm -rf "$BENCH_BASELINE_DIR" "$SIM_OUT_W1" "$SIM_OUT_W4" "$CAMP_OUT_W1" "$CAMP_OUT_W4"' EXIT
CALTRAIN_WORKERS=1 cargo run --offline -q -p caltrain-sim -- \
  --campaign --seeds 1,2 --steps 10 | tee "$CAMP_OUT_W1"
CALTRAIN_WORKERS=4 cargo run --offline -q -p caltrain-sim -- \
  --campaign --seeds 1,2 --steps 10 > "$CAMP_OUT_W4"
diff "$CAMP_OUT_W1" "$CAMP_OUT_W4" \
  || { echo "campaign smoke diverged across worker counts"; exit 1; }

# Accountability-serving gate in smoke mode, under a forced 4-worker
# pool: the sharded LSH index must stay bitwise-identical to the oracle
# scan under exhaustive probing (at 1 and 4 workers) and hold
# recall@10 >= 0.95 under the default probe budget — all assert!()s
# inside the bench. The sub-linear decade-growth gate only runs in the
# full sweep (smoke corpora shard into too few buckets to prune), so a
# loaded CI host cannot flake this step.
echo "==> cargo bench --bench fingerprint_query -- --smoke (CALTRAIN_WORKERS=4, serving gate)"
CALTRAIN_WORKERS=4 cargo bench --offline --bench fingerprint_query -- --smoke

# Kernel ablation bench (strict vs blocked/packed vs SIMD on the conv
# shapes): regenerates BENCH_enclave_kernels.json with per-shape
# GFLOP/s metrics and prints the bench → constant drift check — a loud
# WARNING when the committed MEASURED_{STRICT,NATIVE}_GFLOPS in
# crates/enclave/src/cost.rs diverge >25% from what this host just
# measured. Warning-only: calibration constants are re-based
# deliberately at PR time, not silently by CI wall-clock.
echo "==> cargo bench --bench enclave_kernels (kernel GFLOP/s + drift check)"
cargo bench --offline --bench enclave_kernels

# Diff the freshly regenerated BENCH_*.json against the committed
# baselines and WARN on >10% regressions of classified metrics
# (steps/sec, allocs/step, spawn counts, …). Warning-only by design:
# host wall-clock metrics are noisy on shared runners, and the hard
# correctness gates are the assert!()s inside the benches themselves.
echo "==> bench_diff vs committed baselines (>10% regression warning)"
cargo run --offline -q -p caltrain-bench --bin bench_diff -- \
  "$BENCH_BASELINE_DIR" . --threshold 0.10 || true

# Trend watch over the committed per-PR history: flags slow drifts
# whose cumulative movement beats 10% even though every single-PR step
# stayed under the threshold above. Warning-only for the same reason.
echo "==> bench_diff --trend (slow-drift watch over BENCH_history.jsonl)"
cargo run --offline -q -p caltrain-bench --bin bench_diff -- \
  --trend BENCH_history.jsonl --threshold 0.10 || true

echo "CI green."
