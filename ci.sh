#!/usr/bin/env bash
# CI entry point: exactly what a release gate needs, in dependency order.
# The workspace builds fully offline (all dependencies are vendored under
# vendor/), so --offline both enforces and documents that property.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --offline --no-run

echo "CI green."
