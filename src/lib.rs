//! # CalTrain — confidential and accountable collaborative learning
//!
//! A from-scratch Rust reproduction of *"Reaching Data Confidentiality
//! and Model Accountability on the CalTrain"* (Gu et al., DSN 2019):
//! TEE-based centralized multi-party training that keeps every
//! participant's data encrypted outside a (simulated) SGX enclave while
//! maintaining per-instance fingerprints that make backdoored and
//! mislabeled training data attributable after the fact.
//!
//! This facade re-exports the subsystem crates:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`tensor`] | `caltrain-tensor` | dense f32 tensors, GEMM, im2col, linalg |
//! | [`crypto`] | `caltrain-crypto` | SHA-256, HMAC, HKDF, AES-GCM, X25519, DRBG |
//! | [`runtime`] | `caltrain-runtime` | scoped-thread worker pool + parallelism knob |
//! | [`enclave`] | `caltrain-enclave` | cycle-accounted SGX simulator |
//! | [`nn`] | `caltrain-nn` | Darknet-style DNN framework, two kernel paths |
//! | [`data`] | `caltrain-data` | synthetic CIFAR/face data, shards, sealing |
//! | [`assess`] | `caltrain-assess` | KL information-exposure assessment |
//! | [`fingerprint`] | `caltrain-fingerprint` | linkage records, k-NN, LLE |
//! | [`attack`] | `caltrain-attack` | trojaning attack reproduction |
//! | [`core`] | `caltrain-core` | the CalTrain pipeline itself |
//!
//! # Quickstart
//!
//! ```
//! use caltrain::core::pipeline::{CalTrain, PipelineConfig};
//! use caltrain::data::synthcifar;
//! use caltrain::nn::zoo;
//!
//! // Synthetic 10-class data, 4 distrusting participants.
//! let (train, _test) = synthcifar::generate(40, 10, 1);
//! let net = zoo::cifar10_10layer_scaled(32, 1)?;
//! let mut system = CalTrain::new(net, PipelineConfig {
//!     batch_size: 8,
//!     augment: None,
//!     ..PipelineConfig::default()
//! }, b"quickstart")?;
//! system.enroll_and_ingest(&train, 4, 7)?;
//! let outcome = system.train(1)?;
//! assert_eq!(outcome.epoch_losses.len(), 1);
//! let db = system.build_linkage_db()?;
//! assert_eq!(db.len(), 40);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use caltrain_assess as assess;
pub use caltrain_attack as attack;
pub use caltrain_core as core;
pub use caltrain_crypto as crypto;
pub use caltrain_data as data;
pub use caltrain_enclave as enclave;
pub use caltrain_fingerprint as fingerprint;
pub use caltrain_nn as nn;
pub use caltrain_runtime as runtime;
pub use caltrain_tensor as tensor;
