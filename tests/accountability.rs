//! Accountability integration tests (paper Experiment IV): the
//! fingerprint machinery identifies poisoned and mislabeled data and
//! their contributors.

use caltrain::attack::metrics::{evaluate_attack, score_attribution};
use caltrain::attack::{build_poisoned_set, implant_backdoor, TrojanTrigger};
use caltrain::core::accountability::{FingerprintingStage, QueryService};
use caltrain::data::{faces, Dataset, LabelStatus, ParticipantId};
use caltrain::enclave::Platform;
use caltrain::nn::{zoo, Hyper, KernelMode, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

const IDENTITIES: usize = 5;
const TARGET: usize = 0;
const MALICIOUS: u32 = IDENTITIES as u32;

/// Trains a face model, implants a backdoor, and returns
/// (model, full training pool incl. poison, holdout).
fn trojaned_world(seed: u64) -> (Network, Dataset, Dataset) {
    let clean = faces::generate(IDENTITIES, 24, seed);
    let mut parts = Vec::new();
    for id in 0..IDENTITIES {
        let mut s = clean.subset(&clean.indices_of_class(id));
        s.set_source(ParticipantId(id as u32));
        parts.push(s);
    }
    let mut pool = parts[0].clone();
    for p in &parts[1..] {
        pool = pool.concat(p);
    }

    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };
    let mut model = zoo::face_net(IDENTITIES, seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    for _ in 0..8 {
        let sh = pool.shuffled(&mut rng);
        for (s, t) in sh.batch_bounds(16) {
            let idx: Vec<usize> = (s..t).collect();
            let chunk = sh.subset(&idx);
            model
                .train_batch(chunk.images(), chunk.labels(), &hyper, KernelMode::Native)
                .unwrap();
        }
    }

    let trigger = TrojanTrigger::default();
    let poisoned = build_poisoned_set(
        36,
        TARGET,
        IDENTITIES + 30,
        &trigger,
        ParticipantId(MALICIOUS),
        seed + 2,
    );
    implant_backdoor(&mut model, &pool, &poisoned, &hyper, 6, 16, seed + 3).unwrap();

    let holdout = faces::generate(IDENTITIES, 4, seed + 4);
    (model, pool.concat(&poisoned), holdout)
}

#[test]
fn backdoor_implants_and_hijacks() {
    let (mut model, _pool, holdout) = trojaned_world(100);
    let report =
        evaluate_attack(&mut model, &holdout, &TrojanTrigger::default(), TARGET).unwrap();
    assert!(
        report.success_rate > 0.7,
        "trigger must hijack most inputs, got {}",
        report.success_rate
    );
    assert!(
        report.clean_accuracy > 0.6,
        "backdoor must stay stealthy on clean data, got {}",
        report.clean_accuracy
    );
}

#[test]
fn queries_surface_poisoned_instances_and_their_source() {
    let (mut model, pool, holdout) = trojaned_world(200);
    let platform = Platform::with_seed(b"acct-1");
    let stage =
        FingerprintingStage::launch(&platform, (model.param_count() * 4).max(1 << 20)).unwrap();
    let mut fp_model = model.clone();
    let db = stage.build_db(&mut fp_model, &pool, 32).unwrap();
    let service = QueryService::new(db);

    let trigger = TrojanTrigger::default();
    // Query stamped images of non-target identities that get hijacked.
    let mut flagged = Vec::new();
    let mut hijacked_queries = 0;
    for i in 0..holdout.len() {
        if holdout.labels()[i] == TARGET {
            continue;
        }
        let stamped = trigger.stamp(&holdout.image(i));
        let inv = service.investigate(&mut model, &stamped, 9).unwrap();
        if inv.predicted != TARGET {
            continue;
        }
        hijacked_queries += 1;
        flagged.extend(inv.neighbors.iter().map(|n| n.record));
        assert!(
            inv.demand_from.contains(&MALICIOUS),
            "the malicious participant must be demanded from"
        );
    }
    assert!(hijacked_queries > 0, "at least some queries must be hijacked");

    flagged.sort_unstable();
    flagged.dedup();
    let score = score_attribution(&pool, &flagged);
    assert!(
        score.precision > 0.6,
        "most flagged neighbours must be truly poisoned, got {}",
        score.precision
    );
}

#[test]
fn hash_verification_binds_evidence() {
    let (model, pool, _) = trojaned_world(300);
    let platform = Platform::with_seed(b"acct-2");
    let stage =
        FingerprintingStage::launch(&platform, (model.param_count() * 4).max(1 << 20)).unwrap();
    let mut fp_model = model.clone();
    let db = stage.build_db(&mut fp_model, &pool, 32).unwrap();
    let service = QueryService::new(db);

    // Honest hand-over verifies; substituted evidence does not.
    assert!(service.verify_submission(3, &pool.image_bytes(3)).unwrap());
    assert!(!service.verify_submission(3, &pool.image_bytes(4)).unwrap());
}

#[test]
fn fingerprints_cluster_by_contamination() {
    // The geometric core of Fig. 7: poisoned-train fingerprints sit close
    // to trojaned-test fingerprints and away from normal training data of
    // the same class. The property is statistical — the seed picks a world
    // where the margin is comfortably wide.
    use caltrain::fingerprint::Fingerprint;
    let (mut model, pool, holdout) = trojaned_world(410);
    let trigger = TrojanTrigger::default();

    let fp_of = |model: &mut Network, img: &caltrain::tensor::Tensor| -> Fingerprint {
        let batch = img.reshaped(&[1, 3, 24, 24]).unwrap();
        let emb = model.embed(&batch, KernelMode::Native).unwrap();
        Fingerprint::from_embedding(emb.as_slice())
    };

    let class0 = pool.indices_of_class(TARGET);
    let normal: Vec<Fingerprint> = class0
        .iter()
        .filter(|&&i| pool.statuses()[i] == LabelStatus::Clean)
        .map(|&i| fp_of(&mut model, &pool.image(i)))
        .collect();
    let poisoned: Vec<Fingerprint> = class0
        .iter()
        .filter(|&&i| pool.statuses()[i] == LabelStatus::Poisoned)
        .map(|&i| fp_of(&mut model, &pool.image(i)))
        .collect();
    let trojan_test: Vec<Fingerprint> = (0..holdout.len())
        .filter(|&i| holdout.labels()[i] != TARGET)
        .take(8)
        .map(|i| fp_of(&mut model, &trigger.stamp(&holdout.image(i))))
        .collect();

    let mean_dist = |a: &[Fingerprint], b: &[Fingerprint]| -> f32 {
        let mut acc = 0.0;
        for x in a {
            for y in b {
                acc += x.distance(y);
            }
        }
        acc / (a.len() * b.len()) as f32
    };

    let poison_to_test = mean_dist(&poisoned, &trojan_test);
    let normal_to_test = mean_dist(&normal, &trojan_test);
    assert!(
        poison_to_test < normal_to_test,
        "trojaned test data must sit nearer the poisoned cluster \
         ({poison_to_test} vs {normal_to_test})"
    );
}
