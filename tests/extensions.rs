//! Integration tests for the extension features: DP-SGD (§VII),
//! model-inversion resistance (§VII) and learning hubs (§IV-B).

use caltrain::attack::inversion::{invert_class, InversionConfig};
use caltrain::core::hubs::HubCluster;
use caltrain::core::partition::Partition;
use caltrain::data::{shard, synthcifar};
use caltrain::nn::dpsgd::{DpConfig, DpSgd};
use caltrain::nn::{zoo, Activation, Hyper, KernelMode, NetworkBuilder};

#[test]
fn dpsgd_trains_through_the_facade() {
    let (train, _) = synthcifar::generate(60, 10, 1);
    let mut net = NetworkBuilder::new(&[3, 28, 28])
        .conv(6, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(10, 1, 1, 0, Activation::Linear)
        .global_avgpool()
        .softmax()
        .cost()
        .build(2)
        .unwrap();
    let mut dp = DpSgd::new(DpConfig { clip_norm: 1.0, noise_multiplier: 0.1, seed: 3 });
    let hyper = Hyper { learning_rate: 0.5, momentum: 0.9, decay: 0.0 };
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..8 {
        let idx: Vec<usize> = (0..32).collect();
        let chunk = train.subset(&idx);
        last = dp
            .train_batch(&mut net, chunk.images(), chunk.labels(), &hyper, KernelMode::Native)
            .unwrap();
        first.get_or_insert(last);
    }
    assert!(last < first.unwrap(), "DP-SGD must reduce loss: {first:?} -> {last}");
}

#[test]
fn hub_cluster_trains_through_the_facade() {
    let (train, _) = synthcifar::generate(60, 10, 4);
    let net = zoo::cifar10_10layer_scaled(32, 4).unwrap();
    let mut cluster = HubCluster::new(
        &net,
        shard::split(&train, 2, 5),
        Partition { cut: 2 },
        Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
        16,
        None,
        6,
    )
    .unwrap();
    let r1 = cluster.train_round(1).unwrap();
    let r2 = cluster.train_round(1).unwrap();
    assert_eq!(r1.hub_losses.len(), 2);
    let m1 = r1.hub_losses.iter().sum::<f32>() / 2.0;
    let m2 = r2.hub_losses.iter().sum::<f32>() / 2.0;
    assert!(m2 < m1, "second federated round must improve: {m1} -> {m2}");
}

#[test]
fn inversion_weaker_without_the_frontnet() {
    // Condensed version of the §VII measurement: white-box inversion on a
    // lightly trained model beats inversion through a wrong FrontNet.
    let (train, _) = synthcifar::generate(100, 10, 7);
    let mut full = zoo::cifar10_10layer_scaled(32, 7).unwrap();
    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };
    for _ in 0..3 {
        for (s, t) in train.batch_bounds(32) {
            let idx: Vec<usize> = (s..t).collect();
            let chunk = train.subset(&idx);
            full.train_batch(chunk.images(), chunk.labels(), &hyper, KernelMode::Native)
                .unwrap();
        }
    }
    let mut adversary = zoo::cifar10_10layer_scaled(32, 12345).unwrap();
    let mut params = adversary.export_params();
    params[2..].clone_from_slice(&full.export_params()[2..]);
    adversary.import_params(&params).unwrap();

    let config = InversionConfig { steps: 60, ..Default::default() };
    let white_box = invert_class(&mut full, 2, &config).unwrap();
    let blind = invert_class(&mut adversary, 2, &config).unwrap();
    let probe = blind.image.reshaped(&[1, 3, 28, 28]).unwrap();
    let real = full.predict_probs(&probe, KernelMode::Native).unwrap().as_slice()[2];
    assert!(
        real < white_box.confidence,
        "sealed FrontNet must blunt inversion: {real} vs {}",
        white_box.confidence
    );
}
