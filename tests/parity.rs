//! Accuracy-parity integration tests (paper Experiment I): CalTrain
//! training is arithmetically identical to non-protected training.

use caltrain::core::partition::{Partition, PartitionedTrainer};
use caltrain::data::synthcifar;
use caltrain::enclave::{EnclaveConfig, Platform};
use caltrain::nn::{zoo, Hyper, KernelMode, Network};

fn setup(cut: usize, seed: u64) -> (Platform, caltrain::enclave::Enclave, PartitionedTrainer) {
    let platform = Platform::with_seed(b"parity");
    let enclave = platform
        .create_enclave(&EnclaveConfig {
            name: "trainer".into(),
            code_identity: b"trainer".to_vec(),
            heap_bytes: 1 << 22,
        })
        .unwrap();
    let net = zoo::cifar10_10layer_scaled(32, seed).unwrap();
    let trainer =
        PartitionedTrainer::new(net, Partition { cut }, platform.clone(), &enclave, 16, 7)
            .unwrap();
    (platform, enclave, trainer)
}

#[test]
fn every_cut_yields_identical_weights() {
    let (train, _) = synthcifar::generate(64, 10, 11);
    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };

    // Train with no enclave at all (reference).
    let (_p0, e0, mut reference) = setup(0, 11);
    for _ in 0..2 {
        reference.train_epoch(&train, &e0, &hyper, 16, None).unwrap();
    }
    let reference_params = reference.network().export_params();

    // Any partition cut must reproduce the reference bit-for-bit.
    for cut in [1usize, 2, 4, 6] {
        let (_p, e, mut t) = setup(cut, 11);
        for _ in 0..2 {
            t.train_epoch(&train, &e, &hyper, 16, None).unwrap();
        }
        assert_eq!(
            t.network().export_params(),
            reference_params,
            "cut {cut} diverged from the non-protected reference"
        );
    }
}

#[test]
fn strict_and_native_inference_identical_on_paper_architectures() {
    let (data, _) = synthcifar::generate(8, 10, 13);
    for net_ctor in [zoo::cifar10_10layer_scaled, zoo::cifar10_18layer_scaled] {
        let mut net: Network = net_ctor(32, 13).unwrap();
        let strict = net.predict_probs(data.images(), KernelMode::Strict).unwrap();
        let native = net.predict_probs(data.images(), KernelMode::Native).unwrap();
        assert_eq!(strict.as_slice(), native.as_slice());
    }
}

#[test]
fn enclave_costs_time_not_accuracy() {
    let (train, _) = synthcifar::generate(48, 10, 17);
    let hyper = Hyper::default();

    let (p_plain, e_plain, mut plain) = setup(0, 17);
    let (p_enc, e_enc, mut enc) = setup(4, 17);
    p_plain.reset_clock();
    p_enc.reset_clock();
    plain.train_epoch(&train, &e_plain, &hyper, 16, None).unwrap();
    enc.train_epoch(&train, &e_enc, &hyper, 16, None).unwrap();

    // Same model...
    assert_eq!(plain.network().export_params(), enc.network().export_params());
    // ...but more simulated time.
    assert!(
        p_enc.elapsed().seconds > p_plain.elapsed().seconds,
        "enclave run must cost more simulated time"
    );
    let b = p_enc.cycle_breakdown();
    assert!(b.enclave_compute_cycles > 0);
    assert!(b.transition_cycles > 0);
    assert!(b.marshalling_cycles > 0);
}
