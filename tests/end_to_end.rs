//! Cross-crate integration tests: the full CalTrain lifecycle.

use caltrain::core::accountability::QueryService;
use caltrain::core::pipeline::{open_released, CalTrain, PipelineConfig};
use caltrain::core::partition::Partition;
use caltrain::data::{synthcifar, ParticipantId};
use caltrain::nn::augment::AugmentConfig;
use caltrain::nn::{zoo, Hyper, KernelMode, Network};

fn small_config(cut: usize) -> PipelineConfig {
    PipelineConfig {
        partition: Partition { cut },
        hyper: Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
        batch_size: 16,
        augment: None,
        heap_bytes: 1 << 22,
        snapshots: true,
        ..PipelineConfig::default()
    }
}

fn small_net(seed: u64) -> Network {
    zoo::cifar10_10layer_scaled(32, seed).expect("fixed architecture")
}

#[test]
fn provision_ingest_train_fingerprint_query() {
    let (train, test) = synthcifar::generate(120, 20, 1);
    let mut system = CalTrain::new(small_net(1), small_config(2), b"e2e-1").unwrap();

    let stats = system.enroll_and_ingest(&train, 4, 2).unwrap();
    assert_eq!(stats.instances, 120);
    assert_eq!(stats.discarded, 0);

    let outcome = system.train(3).unwrap();
    assert_eq!(outcome.epoch_losses.len(), 3);
    assert!(outcome.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(
        outcome.epoch_losses[2] < outcome.epoch_losses[0],
        "training must make progress: {:?}",
        outcome.epoch_losses
    );

    // Fingerprint and query round trip.
    let db = system.build_linkage_db().unwrap();
    assert_eq!(db.len(), 120);
    let service = QueryService::new(db);
    let inv = service.investigate(system.network_mut(), &test.image(0), 9).unwrap();
    assert_eq!(inv.neighbors.len(), 9);
    for n in &inv.neighbors {
        assert_eq!(n.label, inv.predicted, "queries are Y-pruned");
    }
    // Simulated time accumulated across every stage.
    assert!(system.platform().cycles() > 0);
}

#[test]
fn model_release_respects_key_boundaries() {
    let (train, _) = synthcifar::generate(60, 10, 3);
    let mut system = CalTrain::new(small_net(3), small_config(2), b"e2e-2").unwrap();
    system.enroll_and_ingest(&train, 3, 4).unwrap();
    system.train(1).unwrap();

    for pid in 0..3u32 {
        let released = system.release_model(ParticipantId(pid)).unwrap();
        let key = system.participants()[pid as usize].data_key();
        let mut template = small_net(99 + u64::from(pid));
        open_released(&mut template, &released, &key).unwrap();
        assert_eq!(template.export_params(), system.network().export_params());
    }

    // Cross-participant decryption must fail.
    let released = system.release_model(ParticipantId(0)).unwrap();
    let wrong_key = system.participants()[1].data_key();
    let mut template = small_net(7);
    assert!(open_released(&mut template, &released, &wrong_key).is_err());
}

#[test]
fn dynamic_repartition_mid_training() {
    let (train, _) = synthcifar::generate(60, 10, 5);
    let mut system = CalTrain::new(small_net(5), small_config(1), b"e2e-3").unwrap();
    system.enroll_and_ingest(&train, 2, 6).unwrap();
    system.train(1).unwrap();
    // Move the cut deeper (as the exposure advisor would after epoch 1).
    system.repartition(Partition { cut: 4 }).unwrap();
    let out = system.train(1).unwrap();
    assert!(out.epoch_outcomes[0].enclave_flops > 0);
}

#[test]
fn cycle_ledger_bit_identical_across_worker_counts() {
    // The simulated clock is charged from FLOP counts, and FLOP counts —
    // like every other observable of the training trajectory — must not
    // depend on how many pool workers executed the conv job graphs or
    // how the tree-reduced gradients were partitioned. Same pipeline,
    // three worker counts, identical ledger to the cycle.
    use caltrain::nn::Parallelism;
    let run = |workers: usize| {
        let (train, _) = synthcifar::generate(48, 8, 11);
        let mut system = CalTrain::new(small_net(11), small_config(2), b"e2e-cyc").unwrap();
        system.network_mut().set_parallelism(Parallelism::new(workers));
        system.enroll_and_ingest(&train, 2, 11).unwrap();
        system.train(2).unwrap();
        (system.platform().cycles(), system.platform().cycle_breakdown())
    };
    let reference = run(1);
    assert!(reference.0 > 0, "training must charge simulated cycles");
    for workers in [2, 4] {
        assert_eq!(
            run(workers),
            reference,
            "the cycle ledger must be bit-identical at {workers} workers"
        );
    }
}

#[test]
fn augmentation_preserves_convergence() {
    let (train, _) = synthcifar::generate(100, 10, 7);
    let mut config = small_config(2);
    config.augment = Some(AugmentConfig::default());
    let mut system = CalTrain::new(small_net(7), config, b"e2e-4").unwrap();
    system.enroll_and_ingest(&train, 2, 8).unwrap();
    let out = system.train(3).unwrap();
    assert!(out.epoch_losses.iter().all(|l| l.is_finite()));
}

#[test]
fn snapshots_are_usable_models() {
    let (train, test) = synthcifar::generate(60, 10, 9);
    let mut system = CalTrain::new(small_net(9), small_config(2), b"e2e-5").unwrap();
    system.enroll_and_ingest(&train, 2, 10).unwrap();
    let out = system.train(2).unwrap();
    assert_eq!(out.snapshots.len(), 2);
    for mut snap in out.snapshots {
        let preds = snap.predict(test.images(), KernelMode::Native).unwrap();
        assert_eq!(preds.len(), test.len());
    }
}
