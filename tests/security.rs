//! Security-property integration tests: the attack surface the paper's
//! threat model (§III) enumerates.

use caltrain::core::participant::Participant;
use caltrain::core::pipeline::{CalTrain, PipelineConfig};
use caltrain::core::partition::Partition;
use caltrain::crypto::x25519;
use caltrain::data::{synthcifar, ParticipantId};
use caltrain::enclave::{ChannelServer, EnclaveConfig, MrEnclave, Platform, ProvisioningClient};
use caltrain::nn::{zoo, Hyper};

fn config() -> PipelineConfig {
    PipelineConfig {
        partition: Partition { cut: 2 },
        hyper: Hyper::default(),
        batch_size: 16,
        augment: None,
        heap_bytes: 1 << 21,
        snapshots: false,
        ..PipelineConfig::default()
    }
}

#[test]
fn unregistered_uploads_are_discarded() {
    let (train, _) = synthcifar::generate(40, 10, 1);
    let net = zoo::cifar10_10layer_scaled(32, 1).unwrap();
    let mut system = CalTrain::new(net, config(), b"sec-1").unwrap();
    system.enroll_and_ingest(&train, 2, 2).unwrap();

    // An attacker who never attested/provisioned sends batches.
    let (attack_data, _) = synthcifar::generate(20, 10, 666);
    let mut attacker = Participant::new(ParticipantId(66), attack_data, b"attacker");
    let stats = system.ingest(&attacker.seal_upload(16));
    assert_eq!(stats.accepted, 0);
    assert!(stats.discarded > 0);
}

#[test]
fn every_tamper_class_is_rejected() {
    let (train, _) = synthcifar::generate(32, 10, 3);
    let net = zoo::cifar10_10layer_scaled(32, 3).unwrap();
    let mut system = CalTrain::new(net, config(), b"sec-2").unwrap();

    let mut honest = Participant::new(ParticipantId(0), train, b"honest");
    system.enroll(honest.clone()).unwrap();

    // Baseline sanity: untouched batches pass.
    let clean = honest.seal_upload(8);
    assert_eq!(system.ingest(&clean).discarded, 0);

    // Ciphertext bitflip.
    let mut t1 = honest.seal_upload(8);
    t1[0].ciphertext[5] ^= 1;
    // Label tampering (labels are AAD — poisoning labels in transit).
    let mut t2 = honest.seal_upload(8);
    t2[1].labels[0] ^= 1;
    // Source spoofing.
    let mut t3 = honest.seal_upload(8);
    t3[2].source = ParticipantId(1);
    // Truncation.
    let mut t4 = honest.seal_upload(8);
    t4[3].ciphertext.truncate(4);

    for (i, batches) in [t1, t2, t3, t4].into_iter().enumerate() {
        let stats = system.ingest(&batches);
        assert_eq!(stats.discarded, 1, "tamper class {i} must discard exactly one batch");
        assert_eq!(stats.accepted, 3, "untampered batches in the same upload still pass");
    }
}

#[test]
fn attestation_gates_key_provisioning() {
    let platform = Platform::with_seed(b"sec-3");
    let agreed = MrEnclave::build(b"agreed-trainer", 4096);

    // Enclave running different code.
    let rogue = platform
        .create_enclave(&EnclaveConfig {
            name: "trainer".into(),
            code_identity: b"evil-trainer".to_vec(),
            heap_bytes: 4096,
        })
        .unwrap();
    let server = ChannelServer::new(&rogue);
    let (quote, pub_key) = server.hello();
    assert!(ProvisioningClient::connect(
        &platform.attestation_service(),
        &agreed,
        &quote,
        &pub_key,
        &[1u8; 32],
    )
    .is_err());

    // Correct code, but quote relayed from a different platform.
    let honest = platform
        .create_enclave(&EnclaveConfig {
            name: "trainer".into(),
            code_identity: b"agreed-trainer".to_vec(),
            heap_bytes: 4096,
        })
        .unwrap();
    let server2 = ChannelServer::new(&honest);
    let (quote2, pub2) = server2.hello();
    let other_platform = Platform::with_seed(b"somewhere-else");
    assert!(ProvisioningClient::connect(
        &other_platform.attestation_service(),
        &agreed,
        &quote2,
        &pub2,
        &[2u8; 32],
    )
    .is_err());

    // Honest on the right platform works.
    let server3 = ChannelServer::new(&honest);
    let (quote3, pub3) = server3.hello();
    assert!(ProvisioningClient::connect(
        &platform.attestation_service(),
        &agreed,
        &quote3,
        &pub3,
        &[3u8; 32],
    )
    .is_ok());
}

#[test]
fn channel_resists_mitm_and_replay() {
    let platform = Platform::with_seed(b"sec-4");
    let enclave = platform
        .create_enclave(&EnclaveConfig {
            name: "trainer".into(),
            code_identity: b"trainer".to_vec(),
            heap_bytes: 4096,
        })
        .unwrap();

    // MITM substitutes its own DH key: binding check fails.
    let server = ChannelServer::new(&enclave);
    let (quote, _real_pub) = server.hello();
    let mitm_pub = x25519::public_key(&[0x55u8; 32]);
    assert!(ProvisioningClient::connect(
        &platform.attestation_service(),
        &enclave.measurement(),
        &quote,
        &mitm_pub,
        &[4u8; 32],
    )
    .is_err());

    // Replay: the same record cannot be delivered twice.
    let server2 = ChannelServer::new(&enclave);
    let (quote2, pub2) = server2.hello();
    let (mut client, client_pub) = ProvisioningClient::connect(
        &platform.attestation_service(),
        &enclave.measurement(),
        &quote2,
        &pub2,
        &[5u8; 32],
    )
    .unwrap();
    let mut server_chan = server2.accept(&client_pub).unwrap();
    let record = client.send(b"key");
    assert!(server_chan.recv(&record).is_ok());
    assert!(server_chan.recv(&record).is_err(), "replay must fail");
}

#[test]
fn sealed_model_snapshots_are_platform_and_code_bound() {
    let platform = Platform::with_seed(b"sec-5");
    let trainer = platform
        .create_enclave(&EnclaveConfig {
            name: "trainer".into(),
            code_identity: b"trainer-v1".to_vec(),
            heap_bytes: 4096,
        })
        .unwrap();
    let blob = trainer.seal(b"epoch-3 weights", b"snapshot");

    // Same code on the same platform unseals.
    let twin = platform
        .create_enclave(&EnclaveConfig {
            name: "trainer".into(),
            code_identity: b"trainer-v1".to_vec(),
            heap_bytes: 4096,
        })
        .unwrap();
    assert_eq!(twin.unseal(&blob, b"snapshot").unwrap(), b"epoch-3 weights");

    // Different code cannot.
    let other_code = platform
        .create_enclave(&EnclaveConfig {
            name: "x".into(),
            code_identity: b"trainer-v2".to_vec(),
            heap_bytes: 4096,
        })
        .unwrap();
    assert!(other_code.unseal(&blob, b"snapshot").is_err());

    // Same code on a different machine cannot.
    let other_platform = Platform::with_seed(b"sec-5b");
    let foreign = other_platform
        .create_enclave(&EnclaveConfig {
            name: "trainer".into(),
            code_identity: b"trainer-v1".to_vec(),
            heap_bytes: 4096,
        })
        .unwrap();
    assert!(foreign.unseal(&blob, b"snapshot").is_err());
}
