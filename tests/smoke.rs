//! Tier-1 smoke test: the cheapest end-to-end exercise of the whole
//! CalTrain path — 2 participants, 1 epoch, a tiny synthetic-CIFAR pool —
//! so every CI run touches seal → attest → provision → train →
//! fingerprint → query even when the heavier integration suites are
//! skipped or filtered.

use caltrain::core::accountability::QueryService;
use caltrain::core::pipeline::{CalTrain, PipelineConfig};
use caltrain::core::partition::Partition;
use caltrain::data::synthcifar;
use caltrain::nn::{zoo, Hyper};

#[test]
fn two_participants_one_epoch_full_pipeline() {
    let (train, test) = synthcifar::generate(32, 8, 11);

    let mut system = CalTrain::new(
        zoo::cifar10_10layer_scaled(16, 11).expect("fixed architecture"),
        PipelineConfig {
            partition: Partition { cut: 2 },
            hyper: Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
            batch_size: 8,
            augment: None,
            heap_bytes: 1 << 22,
            snapshots: false,
            ..PipelineConfig::default()
        },
        b"smoke",
    )
    .expect("pipeline construction");

    // Both participants attest the enclave and upload sealed data; nothing
    // may be discarded in the honest case.
    let stats = system.enroll_and_ingest(&train, 2, 12).expect("enroll + ingest");
    assert_eq!(system.participants().len(), 2);
    assert_eq!(stats.instances, 32);
    assert_eq!(stats.discarded, 0);

    // One partitioned epoch: finite loss, simulated time accrued.
    let outcome = system.train(1).expect("one training epoch");
    assert_eq!(outcome.epoch_losses.len(), 1);
    assert!(outcome.epoch_losses[0].is_finite());
    assert!(system.platform().cycles() > 0, "enclave time must be charged");

    // Every instance gets a linkage record; a query surfaces class-pure
    // neighbours with a participant to demand data from.
    let db = system.build_linkage_db().expect("fingerprinting stage");
    assert_eq!(db.len(), 32);
    let service = QueryService::new(db);
    let inv = service.investigate(system.network_mut(), &test.image(0), 3).expect("query");
    assert_eq!(inv.neighbors.len(), 3);
    assert!(!inv.demand_from.is_empty(), "investigation must name a participant");
    for n in &inv.neighbors {
        assert_eq!(n.label, inv.predicted, "queries are Y-pruned");
    }
}
