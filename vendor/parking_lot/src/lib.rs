//! Vendored offline stand-in for the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate, exposing
//! exactly the API subset this workspace uses.
//!
//! The build environment has no network access and a zero-third-party-crate
//! budget (see the workspace README), so [`Mutex`] and [`RwLock`] here wrap
//! their `std::sync` counterparts, keeping parking_lot's panic-free
//! signatures by unwrapping poison errors (a poisoned lock means a thread
//! already panicked, so escalating to a panic matches parking_lot's
//! behaviourally relevant cases). Swap the real crate back in if contended
//! lock performance ever matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// A mutual-exclusion primitive (`std::sync::Mutex` with parking_lot's API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (`std::sync::RwLock` with parking_lot's API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`].
///
/// **API divergence from the real crate:** parking_lot's `Condvar::wait`
/// takes `&mut MutexGuard<T>`; re-creating that signature over a
/// `std`-backed guard needs `unsafe`, which this shim forbids. `wait`
/// here therefore uses the `std` shape — consume the guard, return it —
/// which every call site in this workspace adapts to with a plain
/// rebind (`guard = cv.wait(guard)`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, atomically releasing `guard` while asleep.
    /// Wakeups may be spurious; callers re-check their predicate in a
    /// loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`; returns the
    /// guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(7usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_handoff() {
        use std::sync::Arc;
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let peer = Arc::clone(&state);
        let t = std::thread::spawn(move || {
            *peer.0.lock() = true;
            peer.1.notify_all();
        });
        let mut ready = state.0.lock();
        while !*ready {
            ready = state.1.wait(ready);
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_expires() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_g, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(5));
        assert!(timed_out);
    }
}
