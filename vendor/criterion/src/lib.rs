//! Vendored offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! exposing exactly the API subset this workspace's benches use.
//!
//! The build environment has no network access and a zero-third-party-crate
//! budget (see the workspace README). This shim keeps the five bench
//! targets compiling and runnable (`cargo bench`) with a simple
//! calibrate-then-measure timer: each benchmark is run for a warm-up, the
//! iteration count is chosen to fill the measurement window, and the mean,
//! minimum and maximum per-iteration times are printed. There are no
//! statistics, plots or HTML reports — for paper-grade numbers swap the
//! real criterion back in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark measurement, as recorded by the shim runner.
///
/// The real criterion persists its estimates under `target/criterion/`;
/// this shim instead keeps an in-process registry so `harness = false`
/// mains can drain it with [`take_samples`] and emit machine-readable
/// reports (the `BENCH_*.json` files `caltrain-bench` writes).
#[derive(Debug, Clone)]
pub struct Sample {
    /// `group/function/parameter`-style benchmark id.
    pub name: String,
    /// Mean seconds per iteration across measurement batches.
    pub mean_secs: f64,
    /// Fastest batch, seconds per iteration.
    pub min_secs: f64,
    /// Slowest batch, seconds per iteration.
    pub max_secs: f64,
}

static SAMPLES: Mutex<Vec<Sample>> = Mutex::new(Vec::new());

/// Drains every measurement recorded since the last call (or process
/// start), in execution order.
pub fn take_samples() -> Vec<Sample> {
    std::mem::take(&mut *SAMPLES.lock().expect("sample registry poisoned"))
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Throughput annotation for a benchmark group (recorded, printed inline).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and the benched parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// The top-level harness state.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup { criterion: self, group: name.to_string(), throughput: None }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.warm_up, self.measurement, id, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// window, not sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Shrinks the measurement window for slow benchmarks.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.measurement = window;
        self
    }

    /// Runs one benchmark in this group with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group, id.id);
        run_one(
            self.criterion.warm_up,
            self.criterion.measurement,
            &name,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = format!("{}/{}", self.group, id);
        run_one(self.criterion.warm_up, self.criterion.measurement, &name, self.throughput, f);
        self
    }

    /// Ends the group (printing is inline; nothing buffered).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measurement: Duration,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: double the iteration count until one batch fills the
    // warm-up window, which also serves as the warm-up itself.
    let mut iters = 1u64;
    let mut batch;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        batch = b.elapsed;
        if batch >= warm_up || iters >= 1 << 30 {
            break;
        }
        // Aim directly for the warm-up window once we have any signal.
        iters = if batch.is_zero() {
            iters * 2
        } else {
            (iters as u128 * warm_up.as_nanos() / batch.as_nanos().max(1))
                .clamp(iters as u128 + 1, 1 << 30) as u64
        };
    }

    // Measure: as many batches as fit in the measurement window, min 3.
    let batches = (measurement.as_nanos() / batch.as_nanos().max(1)).clamp(3, 100) as u32;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut worst = Duration::ZERO;
    for _ in 0..batches {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
        worst = worst.max(b.elapsed);
    }
    let per_iter = |d: Duration| d.as_secs_f64() / iters as f64;
    let mean = per_iter(total) / batches as f64;
    let extra = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            format!("  {:>10}/s", human_bytes(bytes as f64 / mean))
        }
        Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / mean),
        None => String::new(),
    };
    println!(
        "  {name:<48} {:>12}  [min {:>12}, max {:>12}]{extra}",
        human_time(mean),
        human_time(per_iter(best)),
        human_time(per_iter(worst)),
    );
    SAMPLES.lock().expect("sample registry poisoned").push(Sample {
        name: name.to_string(),
        mean_secs: mean,
        min_secs: per_iter(best),
        max_secs: per_iter(worst),
    });
}

fn human_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn human_bytes(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes_per_sec;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { warm_up: Duration::from_micros(200), measurement: Duration::from_micros(600) };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(64));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("noop", 64), &64usize, |b, &n| {
            ran = true;
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(ran);
        let recorded = take_samples();
        let sample = recorded
            .iter()
            .find(|s| s.name == "smoke/noop/64")
            .expect("runner must register the measurement");
        assert!(sample.mean_secs >= 0.0 && sample.min_secs <= sample.max_secs);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
