//! Vendored offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing exactly the API subset this workspace uses.
//!
//! The build environment has no network access and a zero-third-party-crate
//! budget (see the workspace README), so the handful of `rand` APIs the
//! reproduction relies on are reimplemented here:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `fill_bytes`;
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`;
//! * [`rngs::StdRng`] — here a xoshiro256\*\* generator. **The stream is
//!   deterministic per seed but is NOT the same stream as the real
//!   `rand::rngs::StdRng`**; everything in this workspace only relies on
//!   same-seed reproducibility, never on specific values;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Not cryptographically secure; the workspace's security-relevant
//! randomness comes from `caltrain-crypto`'s HMAC-DRBG instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by rejection sampling (`span >= 1`).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    // Zone is the largest multiple of `span` that fits in u64; one u64 is
    // always enough because every integer range here spans < 2^64 values
    // after offsetting, except the trivial full-width case.
    if span > u64::MAX as u128 {
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span64) as u128;
        }
    }
}

macro_rules! range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a 64-bit seed (SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12); the
    /// workspace only relies on same-seed reproducibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 0xbb67ae8584caa73b, 1];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extensions (the `shuffle` half of the real trait).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u128(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>().to_bits(), b.gen::<f32>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen::<u32>()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen::<u32>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3isize..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_all_inclusive_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(-3isize..=3);
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range misses values: {seen:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
