//! Vendored offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, exposing exactly
//! the API subset this workspace's property tests use.
//!
//! The build environment has no network access and a zero-third-party-crate
//! budget (see the workspace README), so the needed surface is
//! reimplemented here:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for ranges,
//!   tuples and [`strategy::Just`];
//! * [`arbitrary::any`] for the primitive integer types;
//! * [`collection::vec`](fn@collection::vec) (fixed or ranged length) and
//!   [`array::uniform12`]/[`array::uniform16`]/[`array::uniform32`].
//!
//! **No shrinking.** On failure the case number, the deterministic seed and
//! the assertion message are reported, which is enough to reproduce (case
//! seeds derive from the test name and case index only). Case generation is
//! fully deterministic run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "uniform over the whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing uniformly distributed values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `Vec` strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`](fn@vec): a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// The strategy returned by [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by the `uniformN` constructors.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            /// An `[T; N]` strategy drawing every element from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }
    uniform!(uniform12 => 12, uniform16 => 16, uniform32 => 32);
}

/// The case runner behind the [`proptest!`] macro.
pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG handed to strategies (deterministic per test name + case).
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration (only `cases` is modelled).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An input precondition failed (`prop_assume!`); retry with new input.
        Reject(String),
        /// A property assertion failed (`prop_assert*!`); the test fails.
        Fail(String),
    }

    /// The per-case result type the macro-generated closure returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a, to derive stable per-test seeds from the test name.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `case` until `config.cases` cases pass, panicking on the first
    /// failure. Rejections (`prop_assume!`) don't count as passes; more than
    /// `cases * 20` rejections abort the test.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let base = fnv1a(name.as_bytes());
        let max_attempts = (config.cases as u64).saturating_mul(20).max(1);
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest '{name}': too many prop_assume! rejections \
                     ({attempt} attempts for {passed}/{} passes)",
                    config.cases
                );
            }
            let seed = base.wrapping_add(attempt);
            let mut rng = TestRng::seed_from_u64(seed);
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case seed {seed}: {msg}")
                }
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident(
            $($arg:pat_param in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng: &mut $crate::test_runner::TestRng|
                    -> $crate::test_runner::TestCaseResult {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )*};
}

/// Like `assert!`, but reported through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but reported through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Like `assert_ne!`, but reported through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Rejects the current case (doesn't fail the test) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.5f32..2.5, z in any::<u8>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_fixed_and_ranged(a in crate::collection::vec(0.0f32..1.0, 25),
                                b in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert_eq!(a.len(), 25);
            prop_assert!(b.len() < 16);
        }

        #[test]
        fn arrays_and_tuples(k in crate::array::uniform16(any::<u8>()),
                             t in (0u8..3, 1usize..16)) {
            prop_assert_eq!(k.len(), 16);
            prop_assert!(t.0 < 3 && t.1 >= 1 && t.1 < 16);
        }

        #[test]
        fn prop_map_applies(v in (1usize..5, 2usize..6).prop_map(|(a, b)| a * b)) {
            prop_assert!((2..30).contains(&v));
        }

        #[test]
        fn assume_rejects_not_fails(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0f32..1.0, 8);
        let a = strat.generate(&mut crate::test_runner::TestRng::seed_from_u64(9));
        let b = strat.generate(&mut crate::test_runner::TestRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
